/**
 * @file
 * The record side of section 5.4: an artificial follower that drains
 * every tuple ring through tap cursors and persists events + payloads
 * to disk, off the application's critical path.
 *
 * Also provides the in-band baseline used for the Scribe comparison:
 * a dispatcher wrapper that logs synchronously inside each system call,
 * which is the cost structure VARAN's decoupled design avoids.
 */

#ifndef VARAN_RR_RECORDER_H
#define VARAN_RR_RECORDER_H

#include <atomic>
#include <cstdio>
#include <string>
#include <thread>

#include "core/layout.h"
#include "rr/log.h"
#include "syscalls/classify.h"
#include "syscalls/sys.h"

namespace varan::rr {

class Recorder
{
  public:
    struct Stats {
        std::uint64_t events = 0;
        std::uint64_t payload_bytes = 0;
    };

    Recorder(const shmem::Region *region, const core::EngineLayout *layout,
             std::string path);
    ~Recorder();

    VARAN_NO_COPY_NO_MOVE(Recorder);

    /**
     * Claim tap cursors on every tuple ring. Must run before the
     * variants start publishing (use Nvx::start's pre-spawn hook).
     */
    Status attachTaps();

    /** Start the drain thread (the artificial follower). */
    void startDraining();

    /** Stop draining (after variants finished), flush, close. */
    Result<Stats> finish();

  private:
    void drainLoop();
    std::size_t drainOnce();

    const shmem::Region *region_;
    const core::EngineLayout *layout_;
    std::string path_;
    std::FILE *file_ = nullptr;
    std::thread thread_;
    std::atomic<bool> stopping_{false};
    Stats stats_;
    int tap_slot_[core::kMaxTuples];
};

/**
 * Scribe-style baseline: execute the call and synchronously append the
 * record before returning to the application.
 */
class InBandRecorder : public sys::Dispatcher
{
  public:
    explicit InBandRecorder(const std::string &path);
    ~InBandRecorder() override;

    long dispatch(long nr, const std::uint64_t args[6]) override;

    std::uint64_t eventsLogged() const { return events_; }

  private:
    int fd_ = -1;
    std::uint64_t events_ = 0;
};

} // namespace varan::rr

#endif // VARAN_RR_RECORDER_H
