/**
 * @file
 * The record side of section 5.4, rebuilt as a peer of the wire
 * shipper: LogSink is an artificial follower that drains every tuple
 * ring through tap cursors with the same peekBatch() ship-batch idiom
 * wire::Shipper uses, serializes v2 records while the payloads are
 * still pinned, and sinks them to disk through a bounded in-memory
 * spill buffer so a slow disk degrades like an evicted wire peer —
 * the sink detaches its taps and the log ends at a valid prefix —
 * instead of backpressuring the leader through the ring.
 *
 * Every write error is checked: the first errno is latched into the
 * stats (and mirrored into ControlBlock for StatusReport), the taps
 * stop advancing past the last durable record, and finish() reports
 * the error instead of returning success over a corrupt log.
 *
 * Also provides the in-band baseline used for the Scribe comparison:
 * a dispatcher wrapper that logs synchronously inside each system call,
 * which is the cost structure VARAN's decoupled design avoids.
 */

#ifndef VARAN_RR_RECORDER_H
#define VARAN_RR_RECORDER_H

#include <atomic>
#include <condition_variable>
#include <deque>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "core/layout.h"
#include "rr/log.h"
#include "syscalls/classify.h"
#include "syscalls/sys.h"

namespace varan::rr {

class LogSink
{
  public:
    /** Largest supported drain batch (events per peekBatch run). */
    static constexpr std::size_t kMaxDrainBatch = 64;

    /** What to do when the spill buffer is full (the disk cannot keep
     *  up with the stream). */
    enum class Overflow : std::uint32_t {
        /** Detach the taps and end the log at a valid prefix — the
         *  leader is never gated (the wire tier's straggler-eviction
         *  semantics applied to a disk). */
        Evict = 0,
        /** Wait for the writer to catch up; ring backpressure may
         *  reach the leader. Benches and finish-everything captures
         *  opt into this. */
        Gate = 1,
    };

    struct Options {
        /** Events per peekBatch run: 1 degenerates to the per-event
         *  drain + one write() per record (the single-event baseline);
         *  larger batches amortise ring synchronisation and write
         *  syscalls. Clamped to [1, kMaxDrainBatch]. */
        std::size_t drain_batch = kMaxDrainBatch;
        /** Spill-buffer cap in bytes (serialized records queued for
         *  the writer thread). */
        std::size_t spill_limit = 8u << 20;
        Overflow overflow = Overflow::Evict;
        /** No writer thread: the drain thread write()s each chunk
         *  inline (one syscall per drain pass; with drain_batch == 1,
         *  one per record). */
        bool synchronous = false;
    };

    struct Stats {
        std::uint64_t events = 0;
        std::uint64_t payload_bytes = 0;
        std::uint64_t bytes_written = 0; ///< durable bytes incl. header
        std::uint64_t write_batches = 0; ///< write() syscalls issued
        std::uint64_t spill_peak = 0;    ///< queued-bytes high-water mark
        std::uint32_t evicted = 0;       ///< sink self-evicted (overflow)
        std::int32_t write_errno = 0;    ///< first write/close failure
    };

    LogSink(const shmem::Region *region, const core::EngineLayout *layout,
            std::string path, Options options);
    ~LogSink();

    VARAN_NO_COPY_NO_MOVE(LogSink);

    /**
     * Open the log (v2 header, checked) and claim tap cursors on every
     * tuple ring. Must run before the variants start publishing (use
     * Nvx::start's pre-spawn hook). Any failure — including no free
     * tap slot (EBUSY) — detaches whatever was attached and
     * closes/unlinks the partially written file.
     */
    Status attachTaps();

    /** Start the drain (and, unless synchronous, writer) thread. */
    void startDraining();

    /** Stop draining (after variants finished), flush, close. Fails
     *  with the latched errno when any write failed. */
    Result<Stats> finish();

    /** Point-in-time statistics (also available after a failed
     *  finish(), which Result cannot carry). */
    Stats stats() const;

  private:
    std::size_t drainOnce();
    std::size_t drainTuple(std::uint32_t tuple);
    /** Hand a serialized chunk to the writer (or write it inline).
     *  @return false when the sink must stop (error or eviction). */
    bool submitChunk(std::vector<std::uint8_t> chunk);
    bool writeChunk(const std::vector<std::uint8_t> &chunk);
    void drainLoop();
    void writerLoop();
    void detachTaps();
    /** Mirror the sink statistics into ControlBlock so StatusReport
     *  (local or served over the wire) can include them. */
    void publishStats();

    const shmem::Region *region_;
    const core::EngineLayout *layout_;
    std::string path_;
    Options options_;
    int fd_ = -1;

    std::thread drain_thread_;
    std::thread writer_thread_;
    std::atomic<bool> stopping_{false};
    std::atomic<bool> drain_done_{false}; ///< no more chunks will arrive
    std::atomic<bool> failed_{false};  ///< a write failed; stop consuming
    std::atomic<bool> evicted_{false}; ///< spill overflow; taps detached

    mutable std::mutex mutex_; ///< guards queue_/queued_bytes_/stats_
    std::condition_variable writer_cv_; ///< writer waits for chunks
    std::condition_variable space_cv_;  ///< Gate mode waits for space
    std::deque<std::vector<std::uint8_t>> queue_;
    std::size_t queued_bytes_ = 0;
    Stats stats_;

    int tap_slot_[core::kMaxTuples];
};

/**
 * The classic recorder surface, now a thin wrapper over LogSink with
 * production defaults (batched drain, bounded spill, evict-on-slow-
 * disk). Kept so examples and callers written against the original
 * API keep compiling.
 */
class Recorder
{
  public:
    using Stats = LogSink::Stats;

    Recorder(const shmem::Region *region, const core::EngineLayout *layout,
             std::string path, LogSink::Options options = {})
        : sink_(region, layout, std::move(path), options)
    {
    }

    VARAN_NO_COPY_NO_MOVE(Recorder);

    Status attachTaps() { return sink_.attachTaps(); }
    void startDraining() { sink_.startDraining(); }
    Result<Stats> finish() { return sink_.finish(); }
    Stats stats() const { return sink_.stats(); }

  private:
    LogSink sink_;
};

/**
 * Scribe-style baseline: execute the call and synchronously append the
 * record before returning to the application. Write failures latch the
 * errno and stop the log from growing past its valid prefix.
 */
class InBandRecorder : public sys::Dispatcher
{
  public:
    explicit InBandRecorder(const std::string &path);
    ~InBandRecorder() override;

    long dispatch(long nr, const std::uint64_t args[6]) override;

    std::uint64_t eventsLogged() const { return events_; }
    /** First latched write failure (0 = healthy). */
    int writeErrno() const { return writer_.error(); }

  private:
    LogWriter writer_;
    std::uint64_t events_ = 0;
};

} // namespace varan::rr

#endif // VARAN_RR_RECORDER_H
