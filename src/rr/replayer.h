/**
 * @file
 * The replay side of section 5.4: an artificial leader that reads a
 * persisted log and publishes its events back into the tuple rings for
 * follower variants to consume. Because VARAN was designed to run
 * multiple instances at once, several variants can be replayed against
 * one log simultaneously — e.g. to find which revisions in a range are
 * susceptible to a reported crash.
 */

#ifndef VARAN_RR_REPLAYER_H
#define VARAN_RR_REPLAYER_H

#include <string>

#include "core/layout.h"
#include "rr/log.h"

namespace varan::rr {

class Replayer
{
  public:
    struct Stats {
        std::uint64_t events = 0;
        std::uint64_t payload_bytes = 0;
    };

    Replayer(const shmem::Region *region, const core::EngineLayout *layout,
             std::string path);

    /**
     * Publish the whole log into the rings, honouring backpressure
     * from the replaying followers. Descriptor-transfer flags are
     * virtualised away (replayed followers never touch real fds).
     */
    Result<Stats> replayAll();

  private:
    const shmem::Region *region_;
    const core::EngineLayout *layout_;
    std::string path_;
};

} // namespace varan::rr

#endif // VARAN_RR_REPLAYER_H
