/**
 * @file
 * The replay side of section 5.4: an artificial leader that reads a
 * persisted log and publishes its events back into the tuple rings for
 * follower variants to consume. Because VARAN was designed to run
 * multiple instances at once, several variants can be replayed against
 * one log simultaneously — e.g. to find which revisions in a range are
 * susceptible to a reported crash.
 *
 * The log is iterated through a streaming LogReader — one record in
 * memory at a time, never the whole file — so multi-gigabyte fleet
 * captures replay in constant memory. A torn tail (the recorder died
 * mid-record) ends the replay cleanly with Stats::truncated set; the
 * valid prefix is replayed in full.
 *
 * Replay-into-restart: rewind() seeks back to the first record so the
 * recorded prefix can be fed again to a variant the restart policy
 * respawned. A respawned follower re-runs its entry function from
 * scratch and re-attaches at the current stream tail, so the only
 * stream it can converge on is the recorded one replayed from the
 * top — quiesce publishing in EngineConfig::on_restart, then rewind()
 * and replay again (multi-tuple apps included: Fork events re-activate
 * their tuples idempotently). See docs/RECORD_REPLAY.md.
 */

#ifndef VARAN_RR_REPLAYER_H
#define VARAN_RR_REPLAYER_H

#include <string>

#include "core/layout.h"
#include "rr/log.h"

namespace varan::rr {

class Replayer
{
  public:
    struct Stats {
        std::uint64_t events = 0;
        std::uint64_t payload_bytes = 0;
        std::uint32_t passes = 0;  ///< completed log passes (rewinds + 1)
        bool truncated = false;    ///< the log ended in a torn record
    };

    Replayer(const shmem::Region *region, const core::EngineLayout *layout,
             std::string path);

    /** Open the log and validate its header: bad magic is EPROTO, an
     *  unknown version ENOTSUP. Implied by the first replay call. */
    Status open();

    /**
     * Publish up to @p max_events log records into the rings,
     * honouring backpressure from the replaying followers.
     * Descriptor-transfer flags are virtualised away (replayed
     * followers never touch real fds). @return the number published;
     * 0 means the log is exhausted (check truncated()).
     */
    Result<std::size_t> replayChunk(std::size_t max_events);

    /** Publish the whole log (or the rest of it). */
    Result<Stats> replayAll();

    /** Seek back to the first record for another pass — the
     *  replay-into-restart re-feed. */
    Status rewind();

    /** Every record up to the end of the valid prefix was published. */
    bool finished() const { return finished_; }
    /** The prefix ended in a torn or checksum-failing record. */
    bool truncated() const { return stats_.truncated; }

    Stats stats() const { return stats_; }

  private:
    Status publishRecord(const LogRecord &record);

    const shmem::Region *region_;
    const core::EngineLayout *layout_;
    std::string path_;
    LogReader reader_;
    Stats stats_;
    bool finished_ = false;
};

} // namespace varan::rr

#endif // VARAN_RR_REPLAYER_H
