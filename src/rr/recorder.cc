#include "rr/recorder.h"

#include <cstring>
#include <fcntl.h>
#include <unistd.h>

#include "common/clock.h"
#include "common/logging.h"
#include "syscalls/raw.h"

namespace varan::rr {

LogSink::LogSink(const shmem::Region *region,
                 const core::EngineLayout *layout, std::string path,
                 Options options)
    : region_(region), layout_(layout), path_(std::move(path)),
      options_(options)
{
    if (options_.drain_batch < 1)
        options_.drain_batch = 1;
    if (options_.drain_batch > kMaxDrainBatch)
        options_.drain_batch = kMaxDrainBatch;
    for (auto &slot : tap_slot_)
        slot = -1;
}

LogSink::~LogSink()
{
    if (drain_thread_.joinable() || writer_thread_.joinable() || fd_ >= 0)
        finish();
}

Status
LogSink::attachTaps()
{
    fd_ = ::open(path_.c_str(), O_CREAT | O_TRUNC | O_WRONLY, 0644);
    if (fd_ < 0) {
        warn("rr sink: open(%s) failed: %s", path_.c_str(),
             std::strerror(errno));
        return Status::fromErrno();
    }

    LogHeader header = {};
    std::memcpy(header.magic, kLogMagic, sizeof(kLogMagic));
    header.version = kLogVersion;
    if (!writeFileFull(fd_, &header, sizeof(header))) {
        const int err = errno != 0 ? errno : EIO;
        warn("rr sink: header write failed: %s", std::strerror(err));
        ::close(fd_);
        fd_ = -1;
        ::unlink(path_.c_str());
        return Status(Errno{err});
    }
    {
        std::lock_guard<std::mutex> lock(mutex_);
        stats_.bytes_written += sizeof(header);
    }

    for (std::uint32_t t = 0; t < core::kMaxTuples; ++t) {
        ring::RingBuffer ring = layout_->tupleRing(region_, t);
        tap_slot_[t] = -1;
        for (int slot = core::kTapConsumerSlot;
             slot < static_cast<int>(ring::kMaxConsumers); ++slot) {
            if (ring.attachConsumerAt(slot)) {
                tap_slot_[t] = slot;
                break;
            }
        }
        if (tap_slot_[t] < 0) {
            warn("rr sink: no free tap slot on tuple %u", t);
            // No free tap slot: undo everything — a partially written
            // log with no recorder behind it must not linger on disk,
            // and half-attached taps must not gate the rings.
            detachTaps();
            ::close(fd_);
            fd_ = -1;
            ::unlink(path_.c_str());
            return Status(Errno{EBUSY});
        }
    }
    publishStats();
    return Status::ok();
}

std::size_t
LogSink::drainTuple(std::uint32_t tuple)
{
    if (tap_slot_[tuple] < 0)
        return 0;
    ring::RingBuffer ring = layout_->tupleRing(region_, tuple);
    shmem::ShardedPool pool = layout_->pool(region_);
    ring::Event events[kMaxDrainBatch];
    ring::WaitSpec nowait;
    nowait.spin_iterations = 0;
    nowait.timeout_ns = 1; // poll

    std::size_t total = 0;
    for (;;) {
        if (failed_.load(std::memory_order_acquire) ||
            evicted_.load(std::memory_order_acquire)) {
            break;
        }
        const std::size_t n = ring.peekBatch(
            tap_slot_[tuple], events, options_.drain_batch, nowait);
        if (n == 0)
            break;

        // Serialize while peekBatch still pins the payload slots (the
        // same copy-before-advance rule as wire::Shipper::drainTuple).
        std::vector<std::uint8_t> chunk;
        std::uint64_t payload_bytes = 0;
        for (std::size_t i = 0; i < n; ++i) {
            const void *payload = nullptr;
            std::size_t payload_size = 0;
            if (events[i].hasPayload()) {
                payload_size = events[i].payload_size;
                payload = pool.pointer(events[i].payload,
                                       events[i].payload_size);
                payload_bytes += payload_size;
            }
            appendRecord(chunk, tuple, events[i], payload, payload_size);
        }
        ring.advanceBy(tap_slot_[tuple], n);
        {
            std::lock_guard<std::mutex> lock(mutex_);
            stats_.events += n;
            stats_.payload_bytes += payload_bytes;
        }
        total += n;
        if (!submitChunk(std::move(chunk)))
            break;
        if (n < options_.drain_batch)
            break;
    }
    return total;
}

std::size_t
LogSink::drainOnce()
{
    core::ControlBlock *cb = layout_->controlBlock(region_);
    const std::uint32_t tuples =
        cb->num_tuples.load(std::memory_order_acquire);
    std::size_t drained = 0;
    for (std::uint32_t t = 0; t < tuples && t < core::kMaxTuples; ++t)
        drained += drainTuple(t);
    return drained;
}

bool
LogSink::submitChunk(std::vector<std::uint8_t> chunk)
{
    if (chunk.empty())
        return true;
    if (options_.synchronous)
        return writeChunk(chunk);

    std::unique_lock<std::mutex> lock(mutex_);
    const std::size_t size = chunk.size();
    if (queued_bytes_ + size > options_.spill_limit && !queue_.empty()) {
        if (options_.overflow == Overflow::Gate) {
            // Soft cap by one chunk (like the shipper outbox): an
            // empty queue always accepts, so an oversized chunk can
            // never deadlock the gate.
            space_cv_.wait(lock, [&] {
                return failed_.load(std::memory_order_acquire) ||
                       queue_.empty() ||
                       queued_bytes_ + size <= options_.spill_limit;
            });
        } else {
            // Evict: the disk lost the race. Stop consuming — the
            // drain loop detaches the taps — and let the log end at
            // the durable prefix instead of gating the leader.
            stats_.evicted = 1;
            evicted_.store(true, std::memory_order_release);
            return false;
        }
    }
    if (failed_.load(std::memory_order_acquire))
        return false;
    queued_bytes_ += size;
    if (queued_bytes_ > stats_.spill_peak)
        stats_.spill_peak = queued_bytes_;
    queue_.push_back(std::move(chunk));
    writer_cv_.notify_one();
    return true;
}

bool
LogSink::writeChunk(const std::vector<std::uint8_t> &chunk)
{
    if (!writeFileFull(fd_, chunk.data(), chunk.size())) {
        const int err = errno != 0 ? errno : EIO;
        {
            std::lock_guard<std::mutex> lock(mutex_);
            if (stats_.write_errno == 0)
                stats_.write_errno = err;
        }
        failed_.store(true, std::memory_order_release);
        space_cv_.notify_all();
        return false;
    }
    std::lock_guard<std::mutex> lock(mutex_);
    stats_.bytes_written += chunk.size();
    ++stats_.write_batches;
    return true;
}

void
LogSink::drainLoop()
{
    while (!stopping_.load(std::memory_order_acquire) &&
           !failed_.load(std::memory_order_acquire) &&
           !evicted_.load(std::memory_order_acquire)) {
        if (drainOnce() == 0)
            sleepNs(200000); // 0.2 ms idle poll
        publishStats();
    }
    if (!failed_.load(std::memory_order_acquire) &&
        !evicted_.load(std::memory_order_acquire)) {
        drainOnce(); // final sweep
    }
    // The drain thread owns the taps: detaching here (and only here
    // once draining started) keeps detachConsumer from racing a
    // concurrent peekBatch, whether we stopped, failed or evicted.
    detachTaps();
    publishStats();
}

void
LogSink::writerLoop()
{
    for (;;) {
        std::vector<std::uint8_t> chunk;
        {
            std::unique_lock<std::mutex> lock(mutex_);
            writer_cv_.wait(lock, [&] {
                return !queue_.empty() ||
                       drain_done_.load(std::memory_order_acquire);
            });
            if (queue_.empty())
                break; // drain finished and everything is on disk
            chunk = std::move(queue_.front());
            queue_.pop_front();
            queued_bytes_ -= chunk.size();
        }
        space_cv_.notify_all();
        if (!writeChunk(chunk)) {
            // Latched; discard the backlog so finish() cannot block on
            // a disk that stopped accepting bytes.
            std::lock_guard<std::mutex> lock(mutex_);
            queue_.clear();
            queued_bytes_ = 0;
        }
    }
}

void
LogSink::startDraining()
{
    VARAN_CHECK(fd_ >= 0);
    if (!options_.synchronous)
        writer_thread_ = std::thread([this] { writerLoop(); });
    drain_thread_ = std::thread([this] { drainLoop(); });
}

void
LogSink::detachTaps()
{
    for (std::uint32_t t = 0; t < core::kMaxTuples; ++t) {
        if (tap_slot_[t] >= 0) {
            ring::RingBuffer ring = layout_->tupleRing(region_, t);
            ring.detachConsumer(tap_slot_[t]);
            tap_slot_[t] = -1;
        }
    }
}

void
LogSink::publishStats()
{
    core::ControlBlock *cb = layout_->controlBlock(region_);
    Stats snapshot = stats();
    bool attached = false;
    for (const int slot : tap_slot_)
        attached = attached || slot >= 0;
    cb->rr_active.store(attached ? 1 : 0, std::memory_order_relaxed);
    cb->rr_evicted.store(snapshot.evicted, std::memory_order_relaxed);
    cb->rr_write_errno.store(snapshot.write_errno,
                             std::memory_order_relaxed);
    cb->rr_events.store(snapshot.events, std::memory_order_relaxed);
    cb->rr_bytes_written.store(snapshot.bytes_written,
                               std::memory_order_relaxed);
    cb->rr_spill_peak.store(snapshot.spill_peak,
                            std::memory_order_relaxed);
}

Result<LogSink::Stats>
LogSink::finish()
{
    stopping_.store(true, std::memory_order_release);
    if (drain_thread_.joinable())
        drain_thread_.join();
    drain_done_.store(true, std::memory_order_release);
    writer_cv_.notify_all();
    if (writer_thread_.joinable())
        writer_thread_.join();
    detachTaps(); // no-op when the drain loop already did

    if (fd_ >= 0) {
        std::lock_guard<std::mutex> lock(mutex_);
        if (::close(fd_) != 0 && stats_.write_errno == 0)
            stats_.write_errno = errno;
        fd_ = -1;
    }
    publishStats();

    Stats snapshot = stats();
    if (snapshot.write_errno != 0)
        return Result<Stats>(Errno{snapshot.write_errno});
    return snapshot;
}

LogSink::Stats
LogSink::stats() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return stats_;
}

// --- InBandRecorder ------------------------------------------------------

InBandRecorder::InBandRecorder(const std::string &path)
{
    // A failed open (or header write) latches into the writer; every
    // dispatch still executes its syscall, it just stops logging.
    (void)writer_.open(path);
}

InBandRecorder::~InBandRecorder()
{
    (void)writer_.close();
}

long
InBandRecorder::dispatch(long nr, const std::uint64_t args[6])
{
    long result = sys::rawSyscall(nr, args[0], args[1], args[2], args[3],
                                  args[4], args[5]);
    // The defining property of the baseline: the record write happens
    // synchronously, inside the intercepted call, before returning.
    ring::Event event = {};
    event.type = ring::EventType::Syscall;
    event.nr = static_cast<std::uint16_t>(nr);
    event.result = result;
    for (unsigned i = 0; i < ring::kInlineArgs; ++i)
        event.args[i] = args[i];

    const sys::SyscallInfo &info = sys::syscallInfo(nr);
    const std::uint8_t *extra = nullptr;
    std::size_t extra_size = 0;
    if (info.out[0].arg >= 0 &&
        info.out[0].len_from == sys::LenFrom::Result && result > 0 &&
        args[info.out[0].arg] != 0) {
        extra_size = static_cast<std::size_t>(result);
        extra = reinterpret_cast<const std::uint8_t *>(
            args[info.out[0].arg]);
    }
    // append() flushes per record (threshold 0), so the event count
    // only grows past records that actually reached the kernel.
    if (writer_.append(0, event, extra, extra_size).isOk())
        ++events_;
    return result;
}

} // namespace varan::rr
