#include "rr/recorder.h"

#include <cstring>
#include <fcntl.h>
#include <unistd.h>

#include "common/clock.h"
#include "common/logging.h"
#include "syscalls/raw.h"

namespace varan::rr {

Recorder::Recorder(const shmem::Region *region,
                   const core::EngineLayout *layout, std::string path)
    : region_(region), layout_(layout), path_(std::move(path))
{
    for (auto &slot : tap_slot_)
        slot = -1;
}

Recorder::~Recorder()
{
    if (thread_.joinable())
        finish();
    if (file_)
        std::fclose(file_);
}

Status
Recorder::attachTaps()
{
    file_ = std::fopen(path_.c_str(), "wb");
    if (!file_)
        return Status::fromErrno();
    LogHeader header = {};
    std::memcpy(header.magic, kLogMagic, sizeof(kLogMagic));
    header.version = 1;
    if (std::fwrite(&header, sizeof(header), 1, file_) != 1)
        return Status::fromErrno();

    for (std::uint32_t t = 0; t < core::kMaxTuples; ++t) {
        ring::RingBuffer ring = layout_->tupleRing(region_, t);
        tap_slot_[t] = -1;
        for (int slot = core::kTapConsumerSlot;
             slot < static_cast<int>(ring::kMaxConsumers); ++slot) {
            if (ring.attachConsumerAt(slot)) {
                tap_slot_[t] = slot;
                break;
            }
        }
        if (tap_slot_[t] < 0)
            return Status(Errno{EBUSY});
    }
    return Status::ok();
}

std::size_t
Recorder::drainOnce()
{
    shmem::ShardedPool pool = layout_->pool(region_);
    std::size_t drained = 0;
    core::ControlBlock *cb = layout_->controlBlock(region_);
    std::uint32_t tuples = cb->num_tuples.load(std::memory_order_acquire);
    for (std::uint32_t t = 0; t < tuples && t < core::kMaxTuples; ++t) {
        ring::RingBuffer ring = layout_->tupleRing(region_, t);
        ring::Event event = {};
        ring::WaitSpec nowait;
        nowait.spin_iterations = 0;
        nowait.timeout_ns = 1; // poll
        while (ring.peek(tap_slot_[t], &event, nowait)) {
            RecordHeader rec = {};
            rec.tuple = t;
            rec.event = event;
            rec.payload_size =
                event.hasPayload() ? event.payload_size : 0;
            std::fwrite(&rec, sizeof(rec), 1, file_);
            if (rec.payload_size > 0) {
                const void *payload =
                    pool.pointer(event.payload, rec.payload_size);
                std::fwrite(payload, 1, rec.payload_size, file_);
                stats_.payload_bytes += rec.payload_size;
            }
            ring.advance(tap_slot_[t]);
            ++stats_.events;
            ++drained;
        }
    }
    return drained;
}

void
Recorder::drainLoop()
{
    while (!stopping_.load(std::memory_order_acquire)) {
        if (drainOnce() == 0)
            sleepNs(200000); // 0.2 ms idle poll
    }
    drainOnce(); // final sweep
}

void
Recorder::startDraining()
{
    VARAN_CHECK(file_ != nullptr);
    thread_ = std::thread([this] { drainLoop(); });
}

Result<Recorder::Stats>
Recorder::finish()
{
    stopping_.store(true, std::memory_order_release);
    if (thread_.joinable())
        thread_.join();
    // Detach taps so they never gate future producers.
    for (std::uint32_t t = 0; t < core::kMaxTuples; ++t) {
        if (tap_slot_[t] >= 0) {
            ring::RingBuffer ring = layout_->tupleRing(region_, t);
            ring.detachConsumer(tap_slot_[t]);
            tap_slot_[t] = -1;
        }
    }
    if (file_) {
        if (std::fflush(file_) != 0)
            return errnoResult<Stats>();
        std::fclose(file_);
        file_ = nullptr;
    }
    return stats_;
}

InBandRecorder::InBandRecorder(const std::string &path)
{
    fd_ = ::open(path.c_str(), O_CREAT | O_TRUNC | O_WRONLY, 0644);
    VARAN_CHECK(fd_ >= 0);
    LogHeader header = {};
    std::memcpy(header.magic, kLogMagic, sizeof(kLogMagic));
    header.version = 1;
    [[maybe_unused]] ssize_t n = ::write(fd_, &header, sizeof(header));
}

InBandRecorder::~InBandRecorder()
{
    if (fd_ >= 0)
        ::close(fd_);
}

long
InBandRecorder::dispatch(long nr, const std::uint64_t args[6])
{
    long result = sys::rawSyscall(nr, args[0], args[1], args[2], args[3],
                                  args[4], args[5]);
    // The defining property of the baseline: the record write happens
    // synchronously, inside the intercepted call, before returning.
    RecordHeader rec = {};
    rec.tuple = 0;
    rec.event.type = ring::EventType::Syscall;
    rec.event.nr = static_cast<std::uint16_t>(nr);
    rec.event.result = result;
    for (unsigned i = 0; i < ring::kInlineArgs; ++i)
        rec.event.args[i] = args[i];

    const sys::SyscallInfo &info = sys::syscallInfo(nr);
    const std::uint8_t *extra = nullptr;
    if (info.out[0].arg >= 0 && info.out[0].len_from ==
            sys::LenFrom::Result && result > 0 &&
        args[info.out[0].arg] != 0) {
        rec.payload_size = static_cast<std::uint32_t>(result);
        extra = reinterpret_cast<const std::uint8_t *>(
            args[info.out[0].arg]);
    }
    [[maybe_unused]] ssize_t n = ::write(fd_, &rec, sizeof(rec));
    if (extra)
        n = ::write(fd_, extra, rec.payload_size);
    ++events_;
    return result;
}

} // namespace varan::rr
