#include "rr/replayer.h"

#include <cstdio>
#include <cstring>
#include <vector>

#include "common/logging.h"

namespace varan::rr {

namespace {

/** Shared with Monitor::publishEvent: recycle the slot's old payload. */
void
publishWithShadow(const shmem::Region *region,
                  const core::EngineLayout *layout, std::uint32_t tuple,
                  ring::Event &event, shmem::Offset payload)
{
    core::ControlBlock *cb = layout->controlBlock(region);
    shmem::ShardedPool pool = layout->pool(region);
    ring::RingBuffer ring = layout->tupleRing(region, tuple);
    std::uint64_t *shadow = layout->tupleShadow(region, tuple);
    ring::WaitSpec wait;
    wait.timeout_ns = core::kPublishStallNs;
    std::uint64_t seq = 0;
    if (!ring.claim(1, &seq, wait))
        panic("replay publish stalled");
    // Recycle only once the slot is claimed: by then the gating
    // protocol has proven every consumer is done with the old payload.
    std::uint64_t idx = seq & (cb->ring_capacity - 1);
    if (shadow[idx] != 0)
        pool.release(shadow[idx]);
    shadow[idx] = payload;
    ring.commit({&event, 1});
    cb->events_streamed.fetch_add(1, std::memory_order_relaxed);
}

} // namespace

Replayer::Replayer(const shmem::Region *region,
                   const core::EngineLayout *layout, std::string path)
    : region_(region), layout_(layout), path_(std::move(path))
{
}

Result<Replayer::Stats>
Replayer::replayAll()
{
    std::FILE *file = std::fopen(path_.c_str(), "rb");
    if (!file)
        return errnoResult<Stats>();

    LogHeader header = {};
    if (std::fread(&header, sizeof(header), 1, file) != 1 ||
        std::memcmp(header.magic, kLogMagic, sizeof(kLogMagic)) != 0) {
        std::fclose(file);
        return Result<Stats>(Errno{EPROTO});
    }

    shmem::ShardedPool pool = layout_->pool(region_);
    core::ControlBlock *cb = layout_->controlBlock(region_);
    Stats stats;
    RecordHeader rec = {};
    std::vector<std::uint8_t> payload_buf;
    while (std::fread(&rec, sizeof(rec), 1, file) == 1) {
        shmem::Offset payload = 0;
        if (rec.payload_size > 0) {
            payload_buf.resize(rec.payload_size);
            if (std::fread(payload_buf.data(), 1, rec.payload_size,
                           file) != rec.payload_size) {
                std::fclose(file);
                return Result<Stats>(Errno{EPROTO});
            }
            payload = pool.allocate(rec.tuple, rec.payload_size, 1);
            if (payload == 0) {
                std::fclose(file);
                return Result<Stats>(Errno{ENOMEM});
            }
            std::memcpy(pool.pointer(payload, rec.payload_size),
                        payload_buf.data(), rec.payload_size);
            stats.payload_bytes += rec.payload_size;
        }

        ring::Event event = rec.event;
        // Virtualise descriptor transfer: replayed followers replay
        // results only; there is no live leader to duplicate fds from.
        event.flags &= ~static_cast<std::uint32_t>(ring::kFdTransfer);
        if (payload != 0) {
            event.payload = static_cast<std::uint32_t>(payload);
            event.payload_size = rec.payload_size;
            event.flags |= ring::kHasPayload;
        } else if (event.hasPayload()) {
            event.flags &= ~static_cast<std::uint32_t>(ring::kHasPayload);
            event.payload = 0;
            event.payload_size = 0;
        }

        // Fork events activate tuples exactly as a live leader would.
        if (event.type == ring::EventType::Fork) {
            auto t = static_cast<std::uint32_t>(event.args[0]);
            VARAN_CHECK(t < core::kMaxTuples);
            std::uint32_t current =
                cb->num_tuples.load(std::memory_order_acquire);
            while (current <= t &&
                   !cb->num_tuples.compare_exchange_weak(
                       current, t + 1, std::memory_order_acq_rel)) {
            }
            cb->tuples[t].active.store(1, std::memory_order_release);
        }

        publishWithShadow(region_, layout_, rec.tuple, event, payload);
        ++stats.events;
    }
    std::fclose(file);
    return stats;
}

} // namespace varan::rr
