#include "rr/replayer.h"

#include <cstring>

#include "common/logging.h"

namespace varan::rr {

namespace {

/** Shared with Monitor::publishEvent: recycle the slot's old payload. */
void
publishWithShadow(const shmem::Region *region,
                  const core::EngineLayout *layout, std::uint32_t tuple,
                  ring::Event &event, shmem::Offset payload)
{
    core::ControlBlock *cb = layout->controlBlock(region);
    shmem::ShardedPool pool = layout->pool(region);
    ring::RingBuffer ring = layout->tupleRing(region, tuple);
    std::uint64_t *shadow = layout->tupleShadow(region, tuple);
    ring::WaitSpec wait;
    wait.timeout_ns = core::kPublishStallNs;
    std::uint64_t seq = 0;
    if (!ring.claim(1, &seq, wait))
        panic("replay publish stalled");
    // Recycle only once the slot is claimed: by then the gating
    // protocol has proven every consumer is done with the old payload.
    std::uint64_t idx = seq & (cb->ring_capacity - 1);
    if (shadow[idx] != 0)
        pool.release(shadow[idx]);
    shadow[idx] = payload;
    ring.commit({&event, 1});
    cb->events_streamed.fetch_add(1, std::memory_order_relaxed);
}

} // namespace

Replayer::Replayer(const shmem::Region *region,
                   const core::EngineLayout *layout, std::string path)
    : region_(region), layout_(layout), path_(std::move(path))
{
}

Status
Replayer::open()
{
    if (reader_.isOpen())
        return Status::ok();
    return reader_.open(path_);
}

Status
Replayer::publishRecord(const LogRecord &record)
{
    shmem::ShardedPool pool = layout_->pool(region_);
    core::ControlBlock *cb = layout_->controlBlock(region_);

    shmem::Offset payload = 0;
    if (!record.payload.empty()) {
        const auto size =
            static_cast<std::uint32_t>(record.payload.size());
        payload = pool.allocate(record.tuple, size, 1);
        if (payload == 0)
            return Status(Errno{ENOMEM});
        std::memcpy(pool.pointer(payload, size), record.payload.data(),
                    size);
        stats_.payload_bytes += size;
    }

    ring::Event event = record.event;
    // Virtualise descriptor transfer: replayed followers replay
    // results only; there is no live leader to duplicate fds from.
    event.flags &= ~static_cast<std::uint32_t>(ring::kFdTransfer);
    if (payload != 0) {
        event.payload = static_cast<std::uint32_t>(payload);
        event.payload_size =
            static_cast<std::uint32_t>(record.payload.size());
        event.flags |= ring::kHasPayload;
    } else if (event.hasPayload()) {
        event.flags &= ~static_cast<std::uint32_t>(ring::kHasPayload);
        event.payload = 0;
        event.payload_size = 0;
    }

    // Fork events activate tuples exactly as a live leader would (a
    // second pass re-activates them idempotently).
    if (event.type == ring::EventType::Fork) {
        auto t = static_cast<std::uint32_t>(event.args[0]);
        VARAN_CHECK(t < core::kMaxTuples);
        std::uint32_t current =
            cb->num_tuples.load(std::memory_order_acquire);
        while (current <= t && !cb->num_tuples.compare_exchange_weak(
                                   current, t + 1,
                                   std::memory_order_acq_rel)) {
        }
        cb->tuples[t].active.store(1, std::memory_order_release);
    }

    publishWithShadow(region_, layout_, record.tuple, event, payload);
    ++stats_.events;
    return Status::ok();
}

Result<std::size_t>
Replayer::replayChunk(std::size_t max_events)
{
    Status opened = open();
    if (!opened.isOk())
        return Result<std::size_t>(Errno{opened.error().code});
    if (finished_)
        return static_cast<std::size_t>(0);

    std::size_t published = 0;
    LogRecord record;
    while (published < max_events) {
        LogReader::Next n = reader_.next(&record);
        if (n != LogReader::Next::Record) {
            finished_ = true;
            stats_.truncated = n == LogReader::Next::Truncated;
            ++stats_.passes;
            break;
        }
        Status status = publishRecord(record);
        if (!status.isOk())
            return Result<std::size_t>(Errno{status.error().code});
        ++published;
    }
    return published;
}

Result<Replayer::Stats>
Replayer::replayAll()
{
    for (;;) {
        auto chunk = replayChunk(256);
        if (!chunk.ok())
            return Result<Stats>(chunk.error());
        if (finished_)
            return stats_;
    }
}

Status
Replayer::rewind()
{
    Status opened = open();
    if (!opened.isOk())
        return opened;
    Status rewound = reader_.rewind();
    if (!rewound.isOk())
        return rewound;
    finished_ = false;
    return Status::ok();
}

} // namespace varan::rr
