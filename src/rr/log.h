/**
 * @file
 * On-disk log format for record-replay (paper section 5.4).
 *
 * VARAN's in-memory ring is deallocated as soon as followers consume
 * it; full record-replay adds two artificial clients: a *recorder*
 * follower that persists the stream, and a *replayer* leader that
 * publishes a persisted stream back into the rings. This header defines
 * the byte format both share.
 *
 * Format v2 (normative layout in docs/RECORD_REPLAY.md) makes the log
 * crash-consistent: every record carries an FNV-1a checksum over its
 * header and payload, the header version is validated on open, and a
 * torn tail — the recorder was SIGKILLed mid-record, or the disk
 * filled — yields the valid prefix plus a `truncated` flag instead of
 * rejecting the whole log with EPROTO. v1 logs (no checksums) remain
 * readable.
 */

#ifndef VARAN_RR_LOG_H
#define VARAN_RR_LOG_H

#include <cerrno>
#include <cstdint>
#include <cstdio>
#include <string>
#include <unistd.h>
#include <vector>

#include "common/macros.h"
#include "common/result.h"
#include "ring/event.h"

namespace varan::rr {

/** Write exactly @p len bytes to a file descriptor, retrying EINTR
 *  and short writes. The file-backed counterpart of wire::writeFull
 *  (which is sendmsg-based and only works on sockets). */
inline bool
writeFileFull(int fd, const void *buf, std::size_t len)
{
    const auto *p = static_cast<const std::uint8_t *>(buf);
    while (len > 0) {
        ssize_t n = ::write(fd, p, len);
        if (n < 0) {
            if (errno == EINTR)
                continue;
            return false;
        }
        p += static_cast<std::size_t>(n);
        len -= static_cast<std::size_t>(n);
    }
    return true;
}

inline constexpr char kLogMagic[8] = {'V', 'R', 'R', 'L', 'O', 'G', '1',
                                      '\0'};

/** Current log format version written by every recorder. */
inline constexpr std::uint32_t kLogVersion = 2;

struct LogHeader {
    char magic[8];
    std::uint32_t version;
    std::uint32_t reserved;
};

/** v1 record header (legacy, checksum-free): tuple + size + event. */
struct RecordHeaderV1 {
    std::uint32_t tuple;
    std::uint32_t payload_size; ///< bytes following the event
    ring::Event event;
};

/**
 * v2 record header: the v1 fields plus a per-record checksum.
 * `record_crc` is FNV-1a over the first kRecordCrcOffset header bytes
 * followed by the payload bytes, so a torn or bit-flipped record is
 * detected instead of replayed as garbage.
 */
struct RecordHeader {
    std::uint32_t tuple;
    std::uint32_t payload_size; ///< bytes following the header
    ring::Event event;
    std::uint32_t record_crc;
    std::uint32_t reserved;
};

/** Bytes of RecordHeader covered by record_crc (everything before it). */
inline constexpr std::size_t kRecordCrcOffset =
    sizeof(RecordHeader) - 2 * sizeof(std::uint32_t);

static_assert(sizeof(RecordHeaderV1) == 72, "v1 record layout is frozen");
static_assert(sizeof(RecordHeader) == 80, "v2 record layout is frozen");

/** FNV-1a, the same hash the wire tier uses for frame bodies. The
 *  @p seed parameter chains partial hashes (header, then payload). */
inline std::uint32_t
logChecksum(const void *data, std::size_t len,
            std::uint32_t seed = 2166136261u)
{
    const auto *bytes = static_cast<const std::uint8_t *>(data);
    std::uint32_t hash = seed;
    for (std::size_t i = 0; i < len; ++i) {
        hash ^= bytes[i];
        hash *= 16777619u;
    }
    return hash;
}

/** The checksum a v2 record must carry: header-before-crc + payload. */
inline std::uint32_t
recordChecksum(const RecordHeader &rec, const void *payload)
{
    std::uint32_t crc = logChecksum(&rec, kRecordCrcOffset);
    if (rec.payload_size > 0 && payload != nullptr)
        crc = logChecksum(payload, rec.payload_size, crc);
    return crc;
}

/** Serialize one v2 record (header + checksum + payload) onto @p out. */
void appendRecord(std::vector<std::uint8_t> &out, std::uint32_t tuple,
                  const ring::Event &event, const void *payload,
                  std::size_t payload_size);

/** In-memory form of a parsed record. */
struct LogRecord {
    std::uint32_t tuple = 0;
    ring::Event event = {};
    std::vector<std::uint8_t> payload;
};

/** Everything readLog() can say about a log file. */
struct LogContents {
    std::uint32_t version = 0;
    /** The final record was torn or failed its checksum; `records`
     *  holds the valid prefix. */
    bool truncated = false;
    std::vector<LogRecord> records;
};

/**
 * Streaming (non-slurping) log iteration: open() validates the header
 * (bad magic is EPROTO, an unknown version is ENOTSUP — decodable, not
 * parsed as garbage), then next() yields one record at a time without
 * materialising the whole log. A torn or checksum-failing tail ends
 * the stream with Truncated.
 */
class LogReader
{
  public:
    enum class Next : std::uint32_t {
        Record = 0,    ///< *out holds the next record
        End = 1,       ///< clean end of log
        Truncated = 2, ///< torn tail; the prefix already yielded is valid
    };

    LogReader() = default;
    ~LogReader();

    VARAN_NO_COPY_NO_MOVE(LogReader);

    Status open(const std::string &path);
    bool isOpen() const { return file_ != nullptr; }
    std::uint32_t version() const { return version_; }

    /** Advance to the next record. Only valid after a successful
     *  open(); once End/Truncated is returned every further call
     *  repeats it. */
    Next next(LogRecord *out);

    /** Seek back to the first record (replay-into-restart re-feeds the
     *  recorded prefix to a respawned variant from the top). */
    Status rewind();

    void close();

  private:
    std::FILE *file_ = nullptr;
    std::uint32_t version_ = 0;
    bool done_ = false;
    bool truncated_ = false;
};

/**
 * Buffered, error-checked log writer used by the in-band recorder and
 * the wire receiver's file sink (the tap-drain LogSink has its own
 * spill pipeline in rr/recorder.h). The first write failure is latched
 * and every later append()/flush() returns it — the caller can never
 * keep "succeeding" over a corrupt log.
 */
class LogWriter
{
  public:
    LogWriter() = default;
    ~LogWriter();

    VARAN_NO_COPY_NO_MOVE(LogWriter);

    /** Create/truncate @p path and write the v2 header (checked). */
    Status open(const std::string &path);
    bool isOpen() const { return fd_ >= 0; }

    /** Serialize one record into the buffer; flushes once the buffer
     *  exceeds the flush threshold (0 = flush every record). */
    Status append(std::uint32_t tuple, const ring::Event &event,
                  const void *payload, std::size_t payload_size);

    Status flush();
    /** flush() + close(), both checked. */
    Status close();
    /** Failure path: close and unlink the partially written file. */
    void discard();

    /** First latched errno (0 = healthy). */
    int error() const { return errno_; }
    std::uint64_t records() const { return records_; }
    std::uint64_t bytesWritten() const { return bytes_written_; }

    void setFlushThreshold(std::size_t bytes) { flush_threshold_ = bytes; }

  private:
    Status latch(int err);

    int fd_ = -1;
    std::string path_;
    std::vector<std::uint8_t> buf_;
    std::size_t flush_threshold_ = 0; ///< flush every append by default
    int errno_ = 0;
    std::uint64_t records_ = 0;
    std::uint64_t bytes_written_ = 0;
};

/** Parse an entire log file (tests and offline analysis). Built on
 *  LogReader, so a torn tail yields LogContents::truncated rather than
 *  an error. */
Result<LogContents> readLog(const std::string &path);

} // namespace varan::rr

#endif // VARAN_RR_LOG_H
