/**
 * @file
 * On-disk log format for record-replay (paper section 5.4).
 *
 * VARAN's in-memory ring is deallocated as soon as followers consume
 * it; full record-replay adds two artificial clients: a *recorder*
 * follower that persists the stream, and a *replayer* leader that
 * publishes a persisted stream back into the rings. This header defines
 * the byte format both share.
 */

#ifndef VARAN_RR_LOG_H
#define VARAN_RR_LOG_H

#include <cstdint>
#include <string>
#include <vector>

#include "common/result.h"
#include "ring/event.h"

namespace varan::rr {

inline constexpr char kLogMagic[8] = {'V', 'R', 'R', 'L', 'O', 'G', '1',
                                      '\0'};

struct LogHeader {
    char magic[8];
    std::uint32_t version;
    std::uint32_t reserved;
};

/** One record: which tuple ring the event came from, plus payload. */
struct RecordHeader {
    std::uint32_t tuple;
    std::uint32_t payload_size; ///< bytes following the event
    ring::Event event;
};

/** In-memory form of a parsed record. */
struct LogRecord {
    std::uint32_t tuple = 0;
    ring::Event event = {};
    std::vector<std::uint8_t> payload;
};

/** Parse an entire log file (tests and offline analysis). */
Result<std::vector<LogRecord>> readLog(const std::string &path);

} // namespace varan::rr

#endif // VARAN_RR_LOG_H
