#include "arch/disasm.h"

namespace varan::arch {

namespace {

// Immediate/operand classes for the one-byte opcode map.
enum ImmClass : std::uint8_t {
    kNone = 0,
    kImm8,    ///< 1-byte immediate
    kImmZ,    ///< 2 or 4 bytes following operand size (4 in 64-bit)
    kImm16,   ///< always 2 bytes (ret imm16)
    kImmV,    ///< B8+r: 4 bytes, or 8 with REX.W
    kMoffs,   ///< A0-A3: 8-byte absolute in 64-bit mode
    kEnter,   ///< C8: imm16 + imm8
    kRel8,    ///< 1-byte branch displacement
    kRel32,   ///< 4-byte branch displacement
    kGrpF6,   ///< F6: imm8 iff modrm.reg in {0,1}
    kGrpF7,   ///< F7: immZ iff modrm.reg in {0,1}
    kBad,     ///< invalid / unsupported in 64-bit mode
};

struct OpInfo {
    bool modrm;
    ImmClass imm;
    bool branch;
};

/** One-byte opcode table (64-bit mode). */
OpInfo
oneByte(std::uint8_t op)
{
    // Regular arithmetic blocks: 00-3F follow an 8-entry pattern:
    // /r forms (00-03), AL,imm8 (04), eAX,immZ (05); 06/07 invalid in 64.
    if (op <= 0x3f) {
        switch (op & 7) {
          case 0: case 1: case 2: case 3:
            // 0F is the two-byte escape, handled by the caller; 26/2E/
            // 36/3E are segment prefixes, also handled by the caller.
            return {true, kNone, false};
          case 4:
            return {false, kImm8, false};
          case 5:
            return {false, kImmZ, false};
          default:
            return {false, kBad, false}; // push/pop seg: invalid in 64-bit
        }
    }
    if (op >= 0x50 && op <= 0x5f) // push/pop r64
        return {false, kNone, false};
    switch (op) {
      case 0x63: return {true, kNone, false};  // movsxd
      case 0x68: return {false, kImmZ, false}; // push immZ
      case 0x69: return {true, kImmZ, false};  // imul r, rm, immZ
      case 0x6a: return {false, kImm8, false}; // push imm8
      case 0x6b: return {true, kImm8, false};  // imul r, rm, imm8
      case 0x6c: case 0x6d: case 0x6e: case 0x6f: // ins/outs
        return {false, kNone, false};
      case 0x80: return {true, kImm8, false};
      case 0x81: return {true, kImmZ, false};
      case 0x82: return {false, kBad, false};
      case 0x83: return {true, kImm8, false};
      case 0x84: case 0x85: case 0x86: case 0x87: // test/xchg
        return {true, kNone, false};
      case 0x88: case 0x89: case 0x8a: case 0x8b: // mov
      case 0x8c: case 0x8d: case 0x8e:            // mov seg / lea
        return {true, kNone, false};
      case 0x8f: return {true, kNone, false};     // pop rm
      case 0x90: case 0x91: case 0x92: case 0x93: // nop/xchg
      case 0x94: case 0x95: case 0x96: case 0x97:
        return {false, kNone, false};
      case 0x98: case 0x99: return {false, kNone, false}; // cwde/cdq
      case 0x9b: case 0x9c: case 0x9d: case 0x9e: case 0x9f:
        return {false, kNone, false};
      case 0xa0: case 0xa1: case 0xa2: case 0xa3:
        return {false, kMoffs, false};
      case 0xa4: case 0xa5: case 0xa6: case 0xa7: // movs/cmps
        return {false, kNone, false};
      case 0xa8: return {false, kImm8, false};    // test al, imm8
      case 0xa9: return {false, kImmZ, false};    // test eax, immZ
      case 0xaa: case 0xab: case 0xac: case 0xad: case 0xae: case 0xaf:
        return {false, kNone, false};             // stos/lods/scas
      case 0xc0: case 0xc1: return {true, kImm8, false}; // shift imm8
      case 0xc2: return {false, kImm16, true};    // ret imm16
      case 0xc3: return {false, kNone, true};     // ret
      case 0xc6: return {true, kImm8, false};     // mov rm8, imm8
      case 0xc7: return {true, kImmZ, false};     // mov rm, immZ
      case 0xc8: return {false, kEnter, false};
      case 0xc9: return {false, kNone, false};    // leave
      case 0xca: return {false, kImm16, true};    // retf imm16
      case 0xcb: return {false, kNone, true};     // retf
      case 0xcc: return {false, kNone, false};    // int3
      case 0xcd: return {false, kImm8, false};    // int imm8
      case 0xce: return {false, kBad, false};     // into: invalid in 64
      case 0xcf: return {false, kNone, true};     // iret
      case 0xd0: case 0xd1: case 0xd2: case 0xd3: // shift group
        return {true, kNone, false};
      case 0xd7: return {false, kNone, false};    // xlat
      case 0xd8: case 0xd9: case 0xda: case 0xdb: // x87
      case 0xdc: case 0xdd: case 0xde: case 0xdf:
        return {true, kNone, false};
      case 0xe0: case 0xe1: case 0xe2: case 0xe3: // loop/jcxz
        return {false, kRel8, true};
      case 0xe4: case 0xe5: return {false, kImm8, false}; // in
      case 0xe6: case 0xe7: return {false, kImm8, false}; // out
      case 0xe8: return {false, kRel32, true};    // call rel32
      case 0xe9: return {false, kRel32, true};    // jmp rel32
      case 0xeb: return {false, kRel8, true};     // jmp rel8
      case 0xec: case 0xed: case 0xee: case 0xef: // in/out dx
        return {false, kNone, false};
      case 0xf1: return {false, kNone, false};    // int1
      case 0xf4: return {false, kNone, false};    // hlt
      case 0xf5: return {false, kNone, false};    // cmc
      case 0xf6: return {true, kGrpF6, false};
      case 0xf7: return {true, kGrpF7, false};
      case 0xf8: case 0xf9: case 0xfa: case 0xfb: case 0xfc: case 0xfd:
        return {false, kNone, false};             // clc..std
      case 0xfe: return {true, kNone, false};     // inc/dec rm8
      case 0xff: return {true, kNone, true};      // group 5 (call/jmp/push)
      default:
        break;
    }
    if (op >= 0x70 && op <= 0x7f) // jcc rel8
        return {false, kRel8, true};
    if (op >= 0xb0 && op <= 0xb7) // mov r8, imm8
        return {false, kImm8, false};
    if (op >= 0xb8 && op <= 0xbf) // mov r, immV
        return {false, kImmV, false};
    return {false, kBad, false};
}

/** Two-byte (0F xx) opcode table. */
OpInfo
twoByte(std::uint8_t op)
{
    if (op == 0x05) return {false, kNone, false};  // syscall
    if (op == 0x0b) return {false, kNone, false};  // ud2
    if (op == 0x01) return {true, kNone, false};   // lgdt etc.
    if (op == 0x00) return {true, kNone, false};   // sldt etc.
    if (op >= 0x10 && op <= 0x17) return {true, kNone, false}; // movups..
    if (op == 0x18 || op == 0x19 || (op >= 0x1a && op <= 0x1f))
        return {true, kNone, false};               // prefetch/nop
    if (op >= 0x28 && op <= 0x2f) return {true, kNone, false}; // movaps..
    if (op == 0x31) return {false, kNone, false};  // rdtsc
    if (op == 0x38 || op == 0x3a) return {false, kBad, false}; // escapes
    if (op >= 0x40 && op <= 0x4f) return {true, kNone, false}; // cmovcc
    if (op >= 0x50 && op <= 0x6f) return {true, kNone, false}; // SSE
    if (op == 0x70) return {true, kImm8, false};   // pshufd
    if (op >= 0x71 && op <= 0x73) return {true, kImm8, false}; // psll etc.
    if (op >= 0x74 && op <= 0x76) return {true, kNone, false};
    if (op == 0x77) return {false, kNone, false};  // emms
    if (op == 0x7e || op == 0x7f) return {true, kNone, false};
    if (op >= 0x80 && op <= 0x8f) return {false, kRel32, true}; // jcc
    if (op >= 0x90 && op <= 0x9f) return {true, kNone, false};  // setcc
    if (op == 0xa0 || op == 0xa1 || op == 0xa8 || op == 0xa9)
        return {false, kNone, false};              // push/pop fs/gs
    if (op == 0xa2) return {false, kNone, false};  // cpuid
    if (op == 0xa3 || op == 0xab || op == 0xb3 || op == 0xbb)
        return {true, kNone, false};               // bt/bts/btr/btc
    if (op == 0xa4 || op == 0xac) return {true, kImm8, false}; // shld/shrd
    if (op == 0xa5 || op == 0xad) return {true, kNone, false};
    if (op == 0xae) return {true, kNone, false};   // fence group
    if (op == 0xaf) return {true, kNone, false};   // imul
    if (op == 0xb0 || op == 0xb1) return {true, kNone, false}; // cmpxchg
    if (op == 0xb6 || op == 0xb7 || op == 0xbe || op == 0xbf)
        return {true, kNone, false};               // movzx/movsx
    if (op == 0xba) return {true, kImm8, false};   // bt group imm8
    if (op == 0xbc || op == 0xbd) return {true, kNone, false}; // bsf/bsr
    if (op == 0xc0 || op == 0xc1) return {true, kNone, false}; // xadd
    if (op == 0xc2) return {true, kImm8, false};   // cmpps
    if (op == 0xc3) return {true, kNone, false};   // movnti
    if (op == 0xc4 || op == 0xc5) return {true, kImm8, false}; // pinsrw..
    if (op == 0xc6) return {true, kImm8, false};   // shufps
    if (op == 0xc7) return {true, kNone, false};   // cmpxchg8b group
    if (op >= 0xc8 && op <= 0xcf) return {false, kNone, false}; // bswap
    if (op >= 0xd0 && op <= 0xfe) return {true, kNone, false};  // MMX/SSE
    return {false, kBad, false};
}

bool
isLegacyPrefix(std::uint8_t b)
{
    switch (b) {
      case 0x26: case 0x2e: case 0x36: case 0x3e: // segment overrides
      case 0x64: case 0x65:                       // fs/gs
      case 0x66: case 0x67:                       // operand/address size
      case 0xf0: case 0xf2: case 0xf3:            // lock/rep
        return true;
      default:
        return false;
    }
}

} // namespace

Insn
decode(const std::uint8_t *code, std::size_t max_len)
{
    Insn out;
    std::size_t i = 0;
    bool opsize16 = false;
    bool rex_w = false;

    auto fail = [&] { return Insn{}; };

    // Legacy prefixes then REX.
    while (i < max_len && isLegacyPrefix(code[i])) {
        if (code[i] == 0x66)
            opsize16 = true;
        ++i;
        if (i > 14)
            return fail();
    }
    if (i < max_len && (code[i] & 0xf0) == 0x40) {
        rex_w = code[i] & 0x08;
        ++i;
    }
    if (i >= max_len)
        return fail();

    // VEX prefixes (C4/C5). A following byte with top bits set would be
    // LES/LDS in 32-bit mode, but those are invalid in 64-bit, so C4/C5
    // here always start a VEX instruction.
    std::uint8_t vex_map = 0;
    if (code[i] == 0xc5) {
        if (i + 2 >= max_len)
            return fail();
        i += 2; // C5 + vex byte
        vex_map = 1;
    } else if (code[i] == 0xc4) {
        if (i + 3 >= max_len)
            return fail();
        vex_map = code[i + 1] & 0x1f;
        i += 3; // C4 + 2 vex bytes
        if (vex_map < 1 || vex_map > 3)
            return fail();
    }

    OpInfo info{};
    if (vex_map) {
        if (i >= max_len)
            return fail();
        out.opcode = code[i];
        ++i;
        // All VEX instructions have ModRM; only map 3 carries imm8.
        info.modrm = true;
        info.imm = (vex_map == 3) ? kImm8 : kNone;
        out.two_byte = true;
    } else if (code[i] == 0x0f) {
        ++i;
        if (i >= max_len)
            return fail();
        std::uint8_t op = code[i];
        if (op == 0x38 || op == 0x3a) {
            // Three-byte maps: ModRM always; 0F 3A carries imm8.
            bool imm = (op == 0x3a);
            ++i;
            if (i >= max_len)
                return fail();
            out.opcode = code[i];
            ++i;
            info.modrm = true;
            info.imm = imm ? kImm8 : kNone;
            out.two_byte = true;
        } else {
            out.opcode = op;
            out.two_byte = true;
            ++i;
            info = twoByte(op);
            if (info.imm == kBad)
                return fail();
            out.is_syscall = (op == 0x05);
            out.is_branch = info.branch;
        }
    } else {
        out.opcode = code[i];
        ++i;
        info = oneByte(out.opcode);
        if (info.imm == kBad)
            return fail();
        out.is_branch = info.branch;
    }

    std::uint8_t modrm = 0;
    if (info.modrm) {
        if (i >= max_len)
            return fail();
        modrm = code[i];
        ++i;
        std::uint8_t mod = modrm >> 6;
        std::uint8_t rm = modrm & 7;
        if (mod != 3 && rm == 4) { // SIB
            if (i >= max_len)
                return fail();
            std::uint8_t sib = code[i];
            ++i;
            if (mod == 0 && (sib & 7) == 5)
                i += 4; // disp32 with no base
        }
        if (mod == 1) {
            i += 1;
        } else if (mod == 2) {
            i += 4;
        } else if (mod == 0 && rm == 5) {
            i += 4;
            out.rip_relative = true;
        }
    }

    // Immediates.
    switch (info.imm) {
      case kNone:
        break;
      case kImm8:
        i += 1;
        break;
      case kImm16:
        i += 2;
        break;
      case kImmZ:
        i += opsize16 ? 2 : 4;
        break;
      case kImmV:
        i += rex_w ? 8 : (opsize16 ? 2 : 4);
        break;
      case kMoffs:
        i += 8;
        break;
      case kEnter:
        i += 3;
        break;
      case kRel8:
        i += 1;
        break;
      case kRel32:
        i += 4;
        break;
      case kGrpF6:
        if ((modrm & 0x38) <= 0x08)
            i += 1;
        break;
      case kGrpF7:
        if ((modrm & 0x38) <= 0x08)
            i += opsize16 ? 2 : 4;
        break;
      case kBad:
        return fail();
    }

    if (i > max_len || i > 15)
        return fail();

    out.length = static_cast<std::uint8_t>(i);
    out.is_int80 =
        (!out.two_byte && out.opcode == 0xcd && code[i - 1] == 0x80);
    return out;
}

ScanResult
scan(const std::uint8_t *code, std::size_t len)
{
    ScanResult result;
    std::size_t off = 0;
    while (off < len) {
        Insn insn = decode(code + off, len - off);
        if (!insn.valid()) {
            result.undecodable_at = off;
            return result;
        }
        ++result.decoded_instructions;
        if (insn.is_syscall)
            result.sites.push_back({off, false});
        else if (insn.is_int80)
            result.sites.push_back({off, true});
        off += insn.length;
    }
    result.complete = true;
    result.undecodable_at = len;
    return result;
}

} // namespace varan::arch
