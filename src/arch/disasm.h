/**
 * @file
 * A "simple x86 disassembler" (paper section 3.2): a length decoder for
 * x86-64 machine code, sufficient to walk compiler-generated text
 * segments instruction by instruction and locate `syscall` / `int 0x80`
 * sites, plus the properties the binary rewriter needs to decide whether
 * surrounding instructions can be relocated into a trampoline.
 */

#ifndef VARAN_ARCH_DISASM_H
#define VARAN_ARCH_DISASM_H

#include <cstddef>
#include <cstdint>
#include <vector>

namespace varan::arch {

/** Decoded properties of one instruction. */
struct Insn {
    std::uint8_t length = 0;    ///< total bytes; 0 = decode failure
    std::uint8_t opcode = 0;    ///< primary opcode byte
    bool two_byte = false;      ///< 0F-escape opcode
    bool has_modrm = false;
    bool rip_relative = false;  ///< uses RIP-relative addressing
    bool is_syscall = false;    ///< 0F 05
    bool is_int80 = false;      ///< CD 80
    bool is_branch = false;     ///< any jmp/jcc/call/ret/loop
    bool valid() const { return length != 0; }
};

/**
 * Decode the instruction at @p code.
 * @param code instruction bytes.
 * @param max_len bytes available; decoding never reads past this.
 */
Insn decode(const std::uint8_t *code, std::size_t max_len);

/** Location of a system-call instruction found by scan(). */
struct SyscallSite {
    std::size_t offset = 0;  ///< byte offset of the instruction
    bool is_int80 = false;   ///< int 0x80 rather than syscall
};

/** Result of scanning a code buffer. */
struct ScanResult {
    std::vector<SyscallSite> sites;
    std::size_t decoded_instructions = 0;
    std::size_t undecodable_at = 0; ///< offset where decoding gave up
    bool complete = false;          ///< reached the end cleanly
};

/**
 * Walk @p code from offset 0, recording every syscall instruction.
 * Stops early (complete=false) if an instruction cannot be decoded.
 */
ScanResult scan(const std::uint8_t *code, std::size_t len);

} // namespace varan::arch

#endif // VARAN_ARCH_DISASM_H
