/**
 * @file
 * Raw system-call invocation, bypassing libc.
 *
 * The monitor must issue real system calls without routing through the
 * interception layer (the real VARAN links its own Bionic-derived libc
 * for the same reason, section 3.1). Results follow kernel convention:
 * negative values in [-4095, -1] are -errno.
 */

#ifndef VARAN_SYSCALLS_RAW_H
#define VARAN_SYSCALLS_RAW_H

#include <cstdint>

namespace varan::sys {

/** Kernel-convention error check. */
inline bool
isError(long result)
{
    return result < 0 && result >= -4095;
}

/** Issue a raw syscall; returns the kernel's value (-errno on failure). */
inline long
rawSyscall(long nr, long a1 = 0, long a2 = 0, long a3 = 0, long a4 = 0,
           long a5 = 0, long a6 = 0)
{
    register long r10 asm("r10") = a4;
    register long r8 asm("r8") = a5;
    register long r9 asm("r9") = a6;
    long ret;
    asm volatile("syscall"
                 : "=a"(ret)
                 : "a"(nr), "D"(a1), "S"(a2), "d"(a3), "r"(r10), "r"(r8),
                   "r"(r9)
                 : "rcx", "r11", "memory");
    return ret;
}

/** -ERESTARTSYS is what interrupted calls report inside the kernel; at
 *  user level interrupted calls surface as -EINTR, which the restart
 *  logic (section 3.2) maps back to a retry. */
inline constexpr long kErestartsys = -512;

} // namespace varan::sys

#endif // VARAN_SYSCALLS_RAW_H
