/**
 * @file
 * The system-call entry layer.
 *
 * Every in-tree application routes its system calls through
 * varan::sys::invoke(). Under native execution that is a raw syscall;
 * under N-version execution the per-process Monitor installs a
 * Dispatcher and every call flows through the engine (leader records,
 * followers replay). The binary rewriter produces exactly the same
 * entry: its detour stubs call rewriteEntry(), which lands in invoke().
 *
 * This mirrors the paper's design where the "system call entry point
 * ... consults an internal system call table" (section 3.2): the
 * Dispatcher is that table's incarnation, swapped when a follower is
 * promoted to leader.
 */

#ifndef VARAN_SYSCALLS_SYS_H
#define VARAN_SYSCALLS_SYS_H

#include <cstdint>
#include <sys/epoll.h>
#include <sys/socket.h>
#include <sys/syscall.h>

#include "rewrite/patcher.h"
#include "syscalls/classify.h"
#include "syscalls/raw.h"

namespace varan::sys {

/** Receives every intercepted system call of this process. */
class Dispatcher
{
  public:
    virtual ~Dispatcher() = default;

    /** @return kernel-convention result (-errno on failure). */
    virtual long dispatch(long nr, const std::uint64_t args[6]) = 0;
};

/** Install (or clear, with nullptr) the process dispatcher. */
void setDispatcher(Dispatcher *dispatcher);
Dispatcher *dispatcher();

/** The single entry point: dispatcher if installed, raw otherwise. */
long invoke(long nr, long a1 = 0, long a2 = 0, long a3 = 0, long a4 = 0,
            long a5 = 0, long a6 = 0);

/** Adapter wired into the binary rewriter's detour stubs. */
long rewriteEntry(rewrite::SyscallFrame *frame);

// --- typed convenience wrappers (kernel convention results) ---

inline long
vopen(const char *path, int flags, int mode = 0)
{
    return invoke(SYS_open, reinterpret_cast<long>(path), flags, mode);
}

inline long
vclose(int fd)
{
    return invoke(SYS_close, fd);
}

inline long
vread(int fd, void *buf, std::size_t len)
{
    return invoke(SYS_read, fd, reinterpret_cast<long>(buf),
                  static_cast<long>(len));
}

inline long
vwrite(int fd, const void *buf, std::size_t len)
{
    return invoke(SYS_write, fd, reinterpret_cast<long>(buf),
                  static_cast<long>(len));
}

inline long
vlseek(int fd, long off, int whence)
{
    return invoke(SYS_lseek, fd, off, whence);
}

inline long
vsocket(int domain, int type, int protocol)
{
    return invoke(SYS_socket, domain, type, protocol);
}

inline long
vbind(int fd, const struct sockaddr *addr, socklen_t len)
{
    return invoke(SYS_bind, fd, reinterpret_cast<long>(addr), len);
}

inline long
vlisten(int fd, int backlog)
{
    return invoke(SYS_listen, fd, backlog);
}

inline long
vaccept4(int fd, struct sockaddr *addr, socklen_t *len, int flags)
{
    return invoke(SYS_accept4, fd, reinterpret_cast<long>(addr),
                  reinterpret_cast<long>(len), flags);
}

inline long
vconnect(int fd, const struct sockaddr *addr, socklen_t len)
{
    return invoke(SYS_connect, fd, reinterpret_cast<long>(addr), len);
}

inline long
vsetsockopt(int fd, int level, int opt, const void *val, socklen_t len)
{
    return invoke(SYS_setsockopt, fd, level, opt,
                  reinterpret_cast<long>(val), len);
}

inline long
vshutdown(int fd, int how)
{
    return invoke(SYS_shutdown, fd, how);
}

inline long
vepoll_create1(int flags)
{
    return invoke(SYS_epoll_create1, flags);
}

inline long
vepoll_ctl(int epfd, int op, int fd, struct epoll_event *ev)
{
    return invoke(SYS_epoll_ctl, epfd, op, fd,
                  reinterpret_cast<long>(ev));
}

inline long
vepoll_wait(int epfd, struct epoll_event *events, int maxevents,
            int timeout_ms)
{
    return invoke(SYS_epoll_wait, epfd, reinterpret_cast<long>(events),
                  maxevents, timeout_ms);
}

inline long
vfcntl(int fd, int cmd, long arg = 0)
{
    return invoke(SYS_fcntl, fd, cmd, arg);
}

inline long
vgetpid()
{
    return invoke(SYS_getpid);
}

inline long
vgetuid()
{
    return invoke(SYS_getuid);
}

inline long
vgeteuid()
{
    return invoke(SYS_geteuid);
}

inline long
vgetgid()
{
    return invoke(SYS_getgid);
}

inline long
vgetegid()
{
    return invoke(SYS_getegid);
}

inline long
vtime(long *out)
{
    return invoke(SYS_time, reinterpret_cast<long>(out));
}

inline long
vgettimeofday(struct timeval *tv)
{
    return invoke(SYS_gettimeofday, reinterpret_cast<long>(tv), 0);
}

inline long
vclock_gettime(int clk, struct timespec *ts)
{
    return invoke(SYS_clock_gettime, clk, reinterpret_cast<long>(ts));
}

inline long
vnanosleep(const struct timespec *req, struct timespec *rem)
{
    return invoke(SYS_nanosleep, reinterpret_cast<long>(req),
                  reinterpret_cast<long>(rem));
}

inline long
vpipe2(int fds[2], int flags)
{
    return invoke(SYS_pipe2, reinterpret_cast<long>(fds), flags);
}

inline long
vdup2(int oldfd, int newfd)
{
    return invoke(SYS_dup2, oldfd, newfd);
}

inline long
vunlink(const char *path)
{
    return invoke(SYS_unlink, reinterpret_cast<long>(path));
}

inline long
vfork_call()
{
    return invoke(SYS_fork);
}

inline long
vgetrandom(void *buf, std::size_t len, unsigned flags)
{
    return invoke(SYS_getrandom, reinterpret_cast<long>(buf),
                  static_cast<long>(len), static_cast<long>(flags));
}

[[noreturn]] inline void
vexit(int status)
{
    invoke(SYS_exit_group, status);
    __builtin_unreachable();
}

} // namespace varan::sys

#endif // VARAN_SYSCALLS_SYS_H
