/**
 * @file
 * System-call semantics table (the "internal system call table" of
 * section 3.2, plus the transfer metadata of section 3.3).
 *
 * Every intercepted call is classified so the leader knows what to
 * record and followers know what to replay:
 *
 *  - Local: process-local effects (mmap, mprotect, ...); every variant
 *    executes it itself and nothing is streamed.
 *  - Replicated: the leader executes it and streams the result; if the
 *    call fills caller buffers, the table describes which argument is
 *    the OUT buffer and where its length comes from so the payload can
 *    travel through the shared pool.
 *  - FdCreating: Replicated + the resulting descriptor is duplicated to
 *    every follower over the data channel (section 3.3.2).
 *  - Virtual: time-family calls (the vsyscall/vDSO set of section
 *    3.2.1); leader value is authoritative.
 *  - Fork / Exit: process-management events with engine support.
 *  - Unhandled: VARAN emits an error when it meets one (footnote 8).
 */

#ifndef VARAN_SYSCALLS_CLASSIFY_H
#define VARAN_SYSCALLS_CLASSIFY_H

#include <cstdint>

namespace varan::sys {

enum class SyscallClass : std::uint8_t {
    Unhandled = 0,
    Local,
    Replicated,
    FdCreating,
    Virtual,
    Fork,
    Exit,
};

/** Where an OUT buffer's byte count comes from. */
enum class LenFrom : std::uint8_t {
    None = 0,   ///< no OUT transfer
    Result,     ///< the syscall result (read, recvfrom, ...)
    ResultTimesSize, ///< result * fixed element size (epoll_wait)
    Arg,        ///< the value of another argument (poll's nfds * size)
    Fixed,      ///< a fixed byte count (fstat, gettimeofday, ...)
    DerefArg,   ///< *(u32*)args[len_arg] (accept's addrlen, in/out)
};

/** Description of one OUT (kernel-fills-it) buffer argument. */
struct OutBufferSpec {
    std::int8_t arg = -1;        ///< which argument is the buffer
    LenFrom len_from = LenFrom::None;
    std::int8_t len_arg = -1;    ///< companion argument index
    std::uint32_t fixed = 0;     ///< byte count / element size
};

/** Full semantic description of one system call. */
struct SyscallInfo {
    const char *name = "unknown";
    SyscallClass cls = SyscallClass::Unhandled;
    OutBufferSpec out[2] = {};     ///< up to two OUT buffers
    std::int8_t fd_array_arg = -1; ///< pipe/socketpair: int[2] argument
    /** Can wait indefinitely on external input (read, accept, poll,
     *  ...). The leader flushes any coalesced publish run before
     *  executing such a call — otherwise buffered events would starve
     *  the followers for as long as the call blocks. */
    bool may_block = false;
};

/** Highest syscall number the table covers. */
inline constexpr int kMaxSyscallNr = 512;

/** Look up semantics; unknown numbers return an Unhandled entry. */
const SyscallInfo &syscallInfo(long nr);

/** Number of system calls with a non-Unhandled classification. */
std::size_t handledSyscallCount();

/**
 * True if @p nr may take the adaptive top-k leader fast path: a
 * Replicated call with no OUT buffers, no descriptor side effects and
 * no blocking semantics, whose result is fully described by the event
 * word itself. Calls the divergence checker hashes from IN buffers
 * (write/pwrite64/sendto) are excluded — the fast path skips hashing,
 * and skipping it would silently weaken verification.
 */
bool fastpathEligible(long nr);

} // namespace varan::sys

#endif // VARAN_SYSCALLS_CLASSIFY_H
