#include "syscalls/sys.h"

#include <atomic>

namespace varan::sys {

namespace {

std::atomic<Dispatcher *> g_dispatcher{nullptr};

} // namespace

void
setDispatcher(Dispatcher *dispatcher)
{
    g_dispatcher.store(dispatcher, std::memory_order_release);
}

Dispatcher *
dispatcher()
{
    return g_dispatcher.load(std::memory_order_acquire);
}

long
invoke(long nr, long a1, long a2, long a3, long a4, long a5, long a6)
{
    Dispatcher *d = g_dispatcher.load(std::memory_order_acquire);
    if (VARAN_LIKELY(d == nullptr))
        return rawSyscall(nr, a1, a2, a3, a4, a5, a6);
    const std::uint64_t args[6] = {
        static_cast<std::uint64_t>(a1), static_cast<std::uint64_t>(a2),
        static_cast<std::uint64_t>(a3), static_cast<std::uint64_t>(a4),
        static_cast<std::uint64_t>(a5), static_cast<std::uint64_t>(a6),
    };
    return d->dispatch(nr, args);
}

long
rewriteEntry(rewrite::SyscallFrame *frame)
{
    return invoke(static_cast<long>(frame->nr),
                  static_cast<long>(frame->args[0]),
                  static_cast<long>(frame->args[1]),
                  static_cast<long>(frame->args[2]),
                  static_cast<long>(frame->args[3]),
                  static_cast<long>(frame->args[4]),
                  static_cast<long>(frame->args[5]));
}

} // namespace varan::sys
