#include "syscalls/classify.h"

#include <array>
#include <sys/syscall.h>

namespace varan::sys {

namespace {

using Table = std::array<SyscallInfo, kMaxSyscallNr>;

OutBufferSpec
outResult(int arg)
{
    return OutBufferSpec{static_cast<std::int8_t>(arg), LenFrom::Result, -1,
                         0};
}

OutBufferSpec
outFixed(int arg, std::uint32_t bytes)
{
    return OutBufferSpec{static_cast<std::int8_t>(arg), LenFrom::Fixed, -1,
                         bytes};
}

OutBufferSpec
outDeref(int arg, int len_arg)
{
    return OutBufferSpec{static_cast<std::int8_t>(arg), LenFrom::DerefArg,
                         static_cast<std::int8_t>(len_arg), 0};
}

OutBufferSpec
outResultTimes(int arg, std::uint32_t element)
{
    return OutBufferSpec{static_cast<std::int8_t>(arg),
                         LenFrom::ResultTimesSize, -1, element};
}

OutBufferSpec
outArgTimes(int arg, int len_arg, std::uint32_t element)
{
    return OutBufferSpec{static_cast<std::int8_t>(arg), LenFrom::Arg,
                         static_cast<std::int8_t>(len_arg), element};
}

Table
buildTable()
{
    Table t = {};

    auto set = [&](long nr, const char *name, SyscallClass cls,
                   OutBufferSpec out0 = {}, OutBufferSpec out1 = {}) {
        SyscallInfo &info = t[static_cast<std::size_t>(nr)];
        info.name = name;
        info.cls = cls;
        info.out[0] = out0;
        info.out[1] = out1;
    };
    using enum SyscallClass;

    // --- file and socket I/O (leader executes, followers replay) ---
    set(SYS_read, "read", Replicated, outResult(1));
    set(SYS_write, "write", Replicated);
    set(SYS_close, "close", Replicated);
    set(SYS_stat, "stat", Replicated, outFixed(1, 144));
    set(SYS_fstat, "fstat", Replicated, outFixed(1, 144));
    set(SYS_lstat, "lstat", Replicated, outFixed(1, 144));
    set(SYS_poll, "poll", Replicated, outArgTimes(0, 1, 8));
    set(SYS_lseek, "lseek", Replicated);
    set(SYS_pread64, "pread64", Replicated, outResult(1));
    set(SYS_pwrite64, "pwrite64", Replicated);
    set(SYS_writev, "writev", Replicated);
    set(SYS_access, "access", Replicated);
    set(SYS_select, "select", Replicated);
    set(SYS_ioctl, "ioctl", Replicated);
    set(SYS_sendto, "sendto", Replicated);
    set(SYS_recvfrom, "recvfrom", Replicated, outResult(1), outDeref(4, 5));
    set(SYS_shutdown, "shutdown", Replicated);
    set(SYS_connect, "connect", Replicated);
    set(SYS_bind, "bind", Replicated);
    set(SYS_listen, "listen", Replicated);
    set(SYS_getsockname, "getsockname", Replicated, outDeref(1, 2));
    set(SYS_getpeername, "getpeername", Replicated, outDeref(1, 2));
    set(SYS_setsockopt, "setsockopt", Replicated);
    set(SYS_getsockopt, "getsockopt", Replicated, outDeref(3, 4));
    set(SYS_fcntl, "fcntl", Replicated);
    set(SYS_flock, "flock", Replicated);
    set(SYS_fsync, "fsync", Replicated);
    set(SYS_fdatasync, "fdatasync", Replicated);
    set(SYS_truncate, "truncate", Replicated);
    set(SYS_ftruncate, "ftruncate", Replicated);
    set(SYS_getdents, "getdents", Replicated, outResult(1));
    set(SYS_getdents64, "getdents64", Replicated, outResult(1));
    set(SYS_getcwd, "getcwd", Replicated, outResult(0));
    set(SYS_chdir, "chdir", Replicated);
    set(SYS_fchdir, "fchdir", Replicated);
    set(SYS_rename, "rename", Replicated);
    set(SYS_mkdir, "mkdir", Replicated);
    set(SYS_rmdir, "rmdir", Replicated);
    set(SYS_link, "link", Replicated);
    set(SYS_unlink, "unlink", Replicated);
    set(SYS_unlinkat, "unlinkat", Replicated);
    set(SYS_symlink, "symlink", Replicated);
    set(SYS_readlink, "readlink", Replicated, outResult(1));
    set(SYS_chmod, "chmod", Replicated);
    set(SYS_fchmod, "fchmod", Replicated);
    set(SYS_chown, "chown", Replicated);
    set(SYS_fchown, "fchown", Replicated);
    set(SYS_utimes, "utimes", Replicated);
    set(SYS_fallocate, "fallocate", Replicated);
    set(SYS_statfs, "statfs", Replicated, outFixed(1, 120));
    set(SYS_fstatfs, "fstatfs", Replicated, outFixed(1, 120));
    set(SYS_newfstatat, "newfstatat", Replicated, outFixed(2, 144));
    set(SYS_statx, "statx", Replicated, outFixed(4, 256));
    set(SYS_epoll_wait, "epoll_wait", Replicated, outResultTimes(1, 12));
    set(SYS_epoll_pwait, "epoll_pwait", Replicated, outResultTimes(1, 12));
    set(SYS_epoll_ctl, "epoll_ctl", Replicated);
    set(SYS_getrandom, "getrandom", Replicated, outResult(0));
    set(SYS_nanosleep, "nanosleep", Replicated, outFixed(1, 16));
    set(SYS_clock_nanosleep, "clock_nanosleep", Replicated,
        outFixed(3, 16));
    set(SYS_timerfd_settime, "timerfd_settime", Replicated,
        outFixed(3, 32));
    set(SYS_timerfd_gettime, "timerfd_gettime", Replicated,
        outFixed(1, 32));
    set(SYS_wait4, "wait4", Local); // local children, local pids
    set(SYS_uname, "uname", Replicated, outFixed(0, 390));
    set(SYS_sysinfo, "sysinfo", Replicated, outFixed(0, 112));
    set(SYS_getrlimit, "getrlimit", Replicated, outFixed(1, 16));
    set(SYS_getrusage, "getrusage", Replicated, outFixed(1, 144));
    set(SYS_prlimit64, "prlimit64", Replicated, outFixed(3, 16));

    // --- identity: the leader's answer is authoritative so the N
    //     versions look like one process to the outside world ---
    set(SYS_getpid, "getpid", Replicated);
    set(SYS_gettid, "gettid", Replicated);
    set(SYS_getppid, "getppid", Replicated);
    set(SYS_getuid, "getuid", Replicated);
    set(SYS_geteuid, "geteuid", Replicated);
    set(SYS_getgid, "getgid", Replicated);
    set(SYS_getegid, "getegid", Replicated);
    set(SYS_getpgrp, "getpgrp", Replicated);
    set(SYS_getpgid, "getpgid", Replicated);
    set(SYS_getsid, "getsid", Replicated);
    set(SYS_setuid, "setuid", Replicated);
    set(SYS_setgid, "setgid", Replicated);
    set(SYS_getpriority, "getpriority", Replicated);
    set(SYS_setpriority, "setpriority", Replicated);
    set(SYS_alarm, "alarm", Replicated);
    set(SYS_setitimer, "setitimer", Replicated, outFixed(2, 32));

    // --- descriptor factories (result travels the data channel) ---
    set(SYS_open, "open", FdCreating);
    set(SYS_openat, "openat", FdCreating);
    set(SYS_creat, "creat", FdCreating);
    set(SYS_dup, "dup", FdCreating);
    set(SYS_dup2, "dup2", FdCreating);
    set(SYS_dup3, "dup3", FdCreating);
    set(SYS_socket, "socket", FdCreating);
    set(SYS_accept, "accept", FdCreating, outDeref(1, 2));
    set(SYS_accept4, "accept4", FdCreating, outDeref(1, 2));
    set(SYS_epoll_create, "epoll_create", FdCreating);
    set(SYS_epoll_create1, "epoll_create1", FdCreating);
    set(SYS_timerfd_create, "timerfd_create", FdCreating);
    set(SYS_eventfd, "eventfd", FdCreating);
    set(SYS_eventfd2, "eventfd2", FdCreating);
    set(SYS_memfd_create, "memfd_create", FdCreating);
    set(SYS_pipe, "pipe", FdCreating);
    t[SYS_pipe].fd_array_arg = 0;
    set(SYS_pipe2, "pipe2", FdCreating);
    t[SYS_pipe2].fd_array_arg = 0;
    set(SYS_socketpair, "socketpair", FdCreating);
    t[SYS_socketpair].fd_array_arg = 3;

    // Calls that can wait indefinitely on external input: the leader
    // must drain any coalesced publish run before entering them.
    for (long nr : {SYS_read, SYS_pread64, SYS_recvfrom, SYS_poll,
                    SYS_select, SYS_epoll_wait, SYS_epoll_pwait,
                    SYS_accept, SYS_accept4, SYS_connect, SYS_nanosleep,
                    SYS_clock_nanosleep, SYS_flock, SYS_wait4,
                    SYS_futex}) {
        t[static_cast<std::size_t>(nr)].may_block = true;
    }

    // --- virtual system calls (section 3.2.1) ---
    set(SYS_time, "time", Virtual, outFixed(0, 8));
    set(SYS_gettimeofday, "gettimeofday", Virtual, outFixed(0, 16));
    set(SYS_clock_gettime, "clock_gettime", Virtual, outFixed(1, 16));
    set(SYS_clock_getres, "clock_getres", Virtual, outFixed(1, 16));
    set(SYS_times, "times", Virtual, outFixed(0, 32));

    // --- process-local calls: no streaming, every variant executes ---
    set(SYS_mmap, "mmap", Local);
    set(SYS_munmap, "munmap", Local);
    set(SYS_mprotect, "mprotect", Local);
    set(SYS_mremap, "mremap", Local);
    set(SYS_brk, "brk", Local);
    set(SYS_madvise, "madvise", Local);
    set(SYS_rt_sigaction, "rt_sigaction", Local);
    set(SYS_rt_sigprocmask, "rt_sigprocmask", Local);
    set(SYS_rt_sigreturn, "rt_sigreturn", Local);
    set(SYS_sigaltstack, "sigaltstack", Local);
    set(SYS_sched_yield, "sched_yield", Local);
    set(SYS_sched_setaffinity, "sched_setaffinity", Local);
    set(SYS_sched_getaffinity, "sched_getaffinity", Local);
    set(SYS_futex, "futex", Local);
    set(SYS_set_tid_address, "set_tid_address", Local);
    set(SYS_set_robust_list, "set_robust_list", Local);
    set(SYS_prctl, "prctl", Local);
    set(SYS_arch_prctl, "arch_prctl", Local);
    set(SYS_umask, "umask", Local);
    set(SYS_setpgid, "setpgid", Local);
    set(SYS_setsid, "setsid", Local);
    set(SYS_kill, "kill", Local);
    set(SYS_tgkill, "tgkill", Local);
    set(SYS_tkill, "tkill", Local);

    // --- process management events ---
    set(SYS_clone, "clone", Fork);
    set(SYS_fork, "fork", Fork);
    set(SYS_vfork, "vfork", Fork);
    set(SYS_exit, "exit", Exit);
    set(SYS_exit_group, "exit_group", Exit);

    return t;
}

const Table &
table()
{
    static const Table t = buildTable();
    return t;
}

} // namespace

const SyscallInfo &
syscallInfo(long nr)
{
    static const SyscallInfo unhandled = {};
    if (nr < 0 || nr >= kMaxSyscallNr)
        return unhandled;
    return table()[static_cast<std::size_t>(nr)];
}

std::size_t
handledSyscallCount()
{
    std::size_t count = 0;
    for (const SyscallInfo &info : table()) {
        if (info.cls != SyscallClass::Unhandled)
            ++count;
    }
    return count;
}

bool
fastpathEligible(long nr)
{
    // The divergence checker hashes these calls' IN buffers; taking
    // the hash-free fast path for them would drop verification.
    if (nr == SYS_write || nr == SYS_pwrite64 || nr == SYS_sendto)
        return false;
    const SyscallInfo &info = syscallInfo(nr);
    return info.cls == SyscallClass::Replicated && info.out[0].arg < 0 &&
           info.out[1].arg < 0 && info.fd_array_arg < 0 && !info.may_block;
}

} // namespace varan::sys
