#include "apps/vcache.h"

#include <array>
#include <cstring>
#include <mutex>
#include <sys/epoll.h>

#include "core/nvx.h"
#include "netio/eventloop.h"
#include "netio/socketio.h"
#include "syscalls/sys.h"

namespace varan::apps::vcache {

struct Cache::Shard {
    mutable std::mutex mutex;
    std::unordered_map<std::string, Entry> map;
};

Cache::Cache(std::size_t shards)
{
    shards_.reserve(shards);
    for (std::size_t i = 0; i < shards; ++i)
        shards_.push_back(std::make_unique<Shard>());
}

Cache::~Cache() = default;

std::size_t
Cache::shardOf(const std::string &key) const
{
    std::uint32_t h = 2166136261u;
    for (char c : key) {
        h ^= static_cast<std::uint8_t>(c);
        h *= 16777619u;
    }
    return h % shards_.size();
}

bool
Cache::set(const std::string &key, std::uint32_t flags, std::string data)
{
    Shard &shard = *shards_[shardOf(key)];
    std::lock_guard<std::mutex> guard(shard.mutex);
    shard.map[key] = Entry{flags, std::move(data)};
    return true;
}

bool
Cache::get(const std::string &key, Entry *out) const
{
    const Shard &shard = *shards_[shardOf(key)];
    std::lock_guard<std::mutex> guard(shard.mutex);
    auto it = shard.map.find(key);
    if (it == shard.map.end())
        return false;
    *out = it->second;
    return true;
}

bool
Cache::erase(const std::string &key)
{
    Shard &shard = *shards_[shardOf(key)];
    std::lock_guard<std::mutex> guard(shard.mutex);
    return shard.map.erase(key) > 0;
}

std::size_t
Cache::size() const
{
    std::size_t total = 0;
    for (const auto &shard : shards_) {
        std::lock_guard<std::mutex> guard(shard->mutex);
        total += shard->map.size();
    }
    return total;
}

namespace {

struct Client {
    std::string inbuf;
};

/** One worker thread: drains its handoff pipe and serves connections. */
void
workerLoop(Cache &cache, int handoff_rd, int shutdown_wr)
{
    netio::EventLoop loop;
    std::unordered_map<int, Client> clients;

    std::function<void(int)> close_client = [&](int fd) {
        loop.remove(fd);
        clients.erase(fd);
        sys::vclose(fd);
    };

    std::function<std::function<void(std::uint32_t)>(int)> on_client =
        [&](int fd) {
            return [&, fd](std::uint32_t events) {
                if (events & (EPOLLHUP | EPOLLERR)) {
                    close_client(fd);
                    return;
                }
                char buf[4096];
                long n = sys::vread(fd, buf, sizeof(buf));
                if (n <= 0) {
                    close_client(fd);
                    return;
                }
                Client &client = clients[fd];
                client.inbuf.append(buf, static_cast<std::size_t>(n));
                for (;;) {
                    std::size_t eol = client.inbuf.find("\r\n");
                    if (eol == std::string::npos)
                        break;
                    std::string line = client.inbuf.substr(0, eol);
                    if (line.rfind("set ", 0) == 0) {
                        // set <key> <flags> <exptime> <bytes>
                        char key[256];
                        unsigned flags = 0, exp = 0, bytes = 0;
                        if (std::sscanf(line.c_str(), "set %255s %u %u %u",
                                        key, &flags, &exp, &bytes) != 4) {
                            client.inbuf.erase(0, eol + 2);
                            netio::sendAll(fd, "CLIENT_ERROR bad set\r\n",
                                           22);
                            continue;
                        }
                        if (client.inbuf.size() < eol + 2 + bytes + 2)
                            break; // wait for the body
                        std::string data =
                            client.inbuf.substr(eol + 2, bytes);
                        client.inbuf.erase(0, eol + 2 + bytes + 2);
                        cache.set(key, flags, std::move(data));
                        netio::sendAll(fd, "STORED\r\n", 8);
                        continue;
                    }
                    client.inbuf.erase(0, eol + 2);
                    if (line.rfind("get ", 0) == 0) {
                        std::string key = line.substr(4);
                        Entry entry;
                        if (cache.get(key, &entry)) {
                            std::string reply =
                                "VALUE " + key + " " +
                                std::to_string(entry.flags) + " " +
                                std::to_string(entry.data.size()) +
                                "\r\n" + entry.data + "\r\nEND\r\n";
                            netio::sendAll(fd, reply.data(), reply.size());
                        } else {
                            netio::sendAll(fd, "END\r\n", 5);
                        }
                    } else if (line.rfind("delete ", 0) == 0) {
                        const char *reply = cache.erase(line.substr(7))
                                                ? "DELETED\r\n"
                                                : "NOT_FOUND\r\n";
                        netio::sendAll(fd, reply, std::strlen(reply));
                    } else if (line == "version") {
                        netio::sendAll(fd, "VERSION 1.4.17\r\n", 16);
                    } else if (line == "quit") {
                        close_client(fd);
                        return;
                    } else if (line == "shutdown") {
                        netio::sendAll(fd, "BYE\r\n", 5);
                        // Tell the acceptor through the event stream
                        // (a pipe write) so every variant shuts down at
                        // the same point in its replicated history.
                        char one = 1;
                        sys::vwrite(shutdown_wr, &one, 1);
                        loop.stop();
                        return;
                    } else {
                        netio::sendAll(fd, "ERROR\r\n", 7);
                    }
                }
            };
        };

    // The handoff pipe delivers new connection descriptors (as 4-byte
    // numbers, valid here because every variant mirrors the leader's
    // numbering). A zero closes the worker down.
    loop.add(handoff_rd, EPOLLIN, [&](std::uint32_t) {
        std::int32_t fd = 0;
        long n = sys::vread(handoff_rd, &fd, sizeof(fd));
        if (n != sizeof(fd) || fd == 0) {
            loop.stop();
            return;
        }
        clients[fd] = Client{};
        loop.add(fd, EPOLLIN, on_client(fd));
    });

    loop.run(50);
    for (auto &entry : clients)
        sys::vclose(entry.first);
}

} // namespace

int
serve(const Options &options)
{
    auto listen = netio::listenAbstract(options.endpoint);
    if (!listen.ok())
        return 65;
    const int listen_fd = listen.value();

    Cache cache;

    // Shutdown travels through a pipe: the syscalls involved replicate
    // through the event stream, keeping every variant's accept loop in
    // lockstep about when to stop.
    int shutdown_pipe[2];
    if (sys::vpipe2(shutdown_pipe, 0) < 0)
        return 68;

    // Handoff pipes, one per worker, created before the workers spawn
    // so the descriptors replicate in order.
    std::vector<std::array<int, 2>> pipes(options.workers);
    for (auto &p : pipes) {
        int fds[2];
        if (sys::vpipe2(fds, 0) < 0)
            return 67;
        p = {fds[0], fds[1]};
    }

    std::vector<std::unique_ptr<core::VThread>> workers;
    workers.reserve(options.workers);
    for (int w = 0; w < options.workers; ++w) {
        int rd = pipes[w][0];
        int sd = shutdown_pipe[1];
        workers.push_back(std::make_unique<core::VThread>(
            [&cache, rd, sd] { workerLoop(cache, rd, sd); }));
    }

    // Acceptor: distribute connections round-robin (deterministic).
    netio::EventLoop loop;
    std::uint64_t accepted = 0;
    loop.add(listen_fd, EPOLLIN, [&](std::uint32_t) {
        long fd = netio::acceptConnection(listen_fd, false);
        if (fd < 0)
            return;
        int w = static_cast<int>(accepted++ %
                                 static_cast<std::uint64_t>(
                                     options.workers));
        std::int32_t fd32 = static_cast<std::int32_t>(fd);
        sys::vwrite(pipes[w][1], &fd32, sizeof(fd32));
    });
    loop.add(shutdown_pipe[0], EPOLLIN, [&](std::uint32_t) {
        char byte = 0;
        sys::vread(shutdown_pipe[0], &byte, 1);
        loop.stop();
    });

    loop.run(50);

    // Wind the workers down: a zero on each pipe stops the loop.
    for (int w = 0; w < options.workers; ++w) {
        std::int32_t zero = 0;
        sys::vwrite(pipes[w][1], &zero, sizeof(zero));
    }
    for (auto &worker : workers)
        worker->join();
    for (auto &p : pipes) {
        sys::vclose(p[0]);
        sys::vclose(p[1]);
    }
    sys::vclose(shutdown_pipe[0]);
    sys::vclose(shutdown_pipe[1]);
    sys::vclose(listen_fd);
    return 0;
}

} // namespace varan::apps::vcache
