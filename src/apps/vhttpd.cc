#include "apps/vhttpd.h"

#include <fcntl.h>
#include <sys/epoll.h>
#include <unordered_map>

#include "netio/eventloop.h"
#include "netio/socketio.h"
#include "syscalls/sys.h"

namespace varan::apps::vhttpd {

Request
parseRequest(const std::string &buffer)
{
    Request req;
    std::size_t end = buffer.find("\r\n\r\n");
    std::size_t terminator = 4;
    if (end == std::string::npos) {
        end = buffer.find("\n\n");
        terminator = 2;
    }
    if (end == std::string::npos)
        return req;
    req.complete = true;
    req.consumed = end + terminator;

    std::size_t line_end = buffer.find('\n');
    std::string line = buffer.substr(0, line_end);
    if (!line.empty() && line.back() == '\r')
        line.pop_back();
    std::size_t sp1 = line.find(' ');
    std::size_t sp2 = line.find(' ', sp1 + 1);
    if (sp1 == std::string::npos) {
        req.method = line;
    } else {
        req.method = line.substr(0, sp1);
        req.path = sp2 == std::string::npos
                       ? line.substr(sp1 + 1)
                       : line.substr(sp1 + 1, sp2 - sp1 - 1);
    }

    // HTTP/1.1 defaults to keep-alive unless "Connection: close".
    std::string headers = buffer.substr(0, end);
    for (char &c : headers)
        c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
    if (headers.find("connection: close") != std::string::npos)
        req.keep_alive = false;
    return req;
}

std::string
makeResponse(int code, const std::string &reason, const std::string &body,
             bool keep_alive)
{
    std::string out = "HTTP/1.1 " + std::to_string(code) + " " + reason +
                      "\r\n";
    out += "Server: vhttpd/1.4.36\r\n";
    out += "Content-Type: text/html\r\n";
    out += "Content-Length: " + std::to_string(body.size()) + "\r\n";
    out += keep_alive ? "Connection: keep-alive\r\n"
                      : "Connection: close\r\n";
    out += "\r\n";
    out += body;
    return out;
}

namespace {

struct Client {
    std::string inbuf;
};

/** The revisions' permission check before touching a document. */
void
permissionChecks(const Revision &revision)
{
    if (revision.issetugid_checks) {
        // Revision 2436: issetugid() — geteuid, getuid, getegid, getgid.
        sys::vgeteuid();
        sys::vgetuid();
        sys::vgetegid();
        sys::vgetgid();
    } else {
        // Revision 2435: geteuid() + getegid() only.
        sys::vgeteuid();
        sys::vgetegid();
    }
}

} // namespace

int
serve(const Options &options)
{
    if (options.revision.read_urandom) {
        // Revision 2524: additional entropy source at startup.
        long fd = sys::vopen("/dev/urandom", O_RDONLY);
        if (fd >= 0) {
            char entropy[16];
            sys::vread(static_cast<int>(fd), entropy, sizeof(entropy));
            sys::vclose(static_cast<int>(fd));
        }
    }

    auto listen = netio::listenAbstract(options.endpoint);
    if (!listen.ok())
        return 65;
    const int listen_fd = listen.value();

    if (options.revision.set_cloexec) {
        // Revision 2578: one extra fcntl on a descriptor.
        sys::vfcntl(listen_fd, F_SETFD, FD_CLOEXEC);
    }

    netio::EventLoop loop;
    if (!loop.valid())
        return 66;

    std::string index_page(options.page_bytes, 'x');
    std::unordered_map<int, Client> clients;

    auto body_for = [&](const std::string &path,
                        bool *found) -> std::string {
        *found = true;
        if (path == "/" || path == "/index.html") {
            if (options.docroot_file.empty())
                return index_page;
            // lighttpd-style: open + read + close per request.
            long fd = sys::vopen(options.docroot_file.c_str(), O_RDONLY);
            if (fd < 0) {
                *found = false;
                return "<html><body>404</body></html>";
            }
            char buf[8192];
            long n = sys::vread(static_cast<int>(fd), buf, sizeof(buf));
            sys::vclose(static_cast<int>(fd));
            return std::string(buf, n > 0 ? static_cast<std::size_t>(n)
                                          : 0);
        }
        auto it = options.docs.find(path);
        if (it != options.docs.end())
            return it->second;
        *found = false;
        return "<html><body>404</body></html>";
    };

    std::function<void(int)> close_client = [&](int fd) {
        loop.remove(fd);
        clients.erase(fd);
        sys::vclose(fd);
    };

    auto on_client = [&](int fd) {
        return [&, fd](std::uint32_t events) {
            if (events & (EPOLLHUP | EPOLLERR)) {
                close_client(fd);
                return;
            }
            char buf[4096];
            long n = sys::vread(fd, buf, sizeof(buf));
            if (n <= 0) {
                close_client(fd);
                return;
            }
            Client &client = clients[fd];
            client.inbuf.append(buf, static_cast<std::size_t>(n));
            for (;;) {
                Request req = parseRequest(client.inbuf);
                if (!req.complete)
                    break;
                client.inbuf.erase(0, req.consumed);

                if (req.path == "/__shutdown") {
                    std::string bye =
                        makeResponse(200, "OK", "bye", false);
                    netio::sendAll(fd, bye.data(), bye.size());
                    loop.stop();
                    return;
                }
                if (!options.revision.crash_path.empty() &&
                    req.path == options.revision.crash_path) {
                    int *bug = nullptr;
                    *bug = 2438; // the crash revision's fault
                }

                permissionChecks(options.revision);
                bool found = false;
                std::string body = body_for(req.path, &found);
                std::string response =
                    found ? makeResponse(200, "OK", body, req.keep_alive)
                          : makeResponse(404, "Not Found", body,
                                         req.keep_alive);
                netio::sendAll(fd, response.data(), response.size());
                if (!req.keep_alive) {
                    close_client(fd);
                    return;
                }
            }
        };
    };

    loop.add(listen_fd, EPOLLIN, [&](std::uint32_t) {
        long fd = netio::acceptConnection(listen_fd, false);
        if (fd < 0)
            return;
        clients[static_cast<int>(fd)] = Client{};
        loop.add(static_cast<int>(fd), EPOLLIN,
                 on_client(static_cast<int>(fd)));
    });

    loop.run();
    for (auto &entry : clients)
        sys::vclose(entry.first);
    sys::vclose(listen_fd);
    return 0;
}

} // namespace varan::apps::vhttpd
