/**
 * @file
 * vhttpd: the Lighttpd/thttpd/Apache archetype — a single-threaded,
 * epoll-driven HTTP/1.1 server with keep-alive, serving an in-memory
 * document root.
 *
 * Revision knobs reproduce the divergences of the paper's
 * multi-revision experiments (section 5.2):
 *  - revision 2435 checks geteuid()+getegid() before opening a file;
 *  - revision 2436 switches to issetugid(), i.e. geteuid, getuid,
 *    getegid, getgid — two *additional* system calls;
 *  - revision 2524 reads /dev/urandom at startup for extra entropy;
 *  - revision 2578 sets FD_CLOEXEC on the listening descriptor with an
 *    additional fcntl.
 * And the crash revision used for the failover experiment (a null
 * dereference on a specific request path).
 */

#ifndef VARAN_APPS_VHTTPD_H
#define VARAN_APPS_VHTTPD_H

#include <map>
#include <string>

namespace varan::apps::vhttpd {

/** Parsed request line + headers (only what a static server needs). */
struct Request {
    std::string method;
    std::string path;
    bool keep_alive = true;
    bool complete = false;  ///< saw the end of the header block
    std::size_t consumed = 0; ///< bytes of input consumed
};

/** Incremental request parser; exposed for unit tests. */
Request parseRequest(const std::string &buffer);

/** Build a response with standard headers. */
std::string makeResponse(int code, const std::string &reason,
                         const std::string &body, bool keep_alive);

struct Revision {
    bool issetugid_checks = false; ///< 2436: +getuid +getgid
    bool read_urandom = false;     ///< 2524: +read of /dev/urandom
    bool set_cloexec = false;      ///< 2578: +fcntl(FD_CLOEXEC)
    std::string crash_path;        ///< crash when this path is requested
};

struct Options {
    std::string endpoint = "varan-vhttpd";
    Revision revision;
    /** Page size served for "/" and "/index.html" (paper uses 4 kB). */
    std::size_t page_bytes = 4096;
    /** Extra documents: path -> body. */
    std::map<std::string, std::string> docs;
    /**
     * When set, "/" is served by opening and reading this file on
     * every request — lighttpd's behaviour, and what makes the
     * permission checks precede an `open` system call exactly as the
     * revisions of section 5.2 expect.
     */
    std::string docroot_file;
};

/** Run until a GET /__shutdown request arrives. Returns exit status. */
int serve(const Options &options);

} // namespace varan::apps::vhttpd

#endif // VARAN_APPS_VHTTPD_H
