/**
 * @file
 * vqueue: the Beanstalkd archetype — a single-threaded work queue with
 * the beanstalk text protocol subset the paper's benchmark exercises:
 *
 *   put <pri> <delay> <ttr> <bytes>\r\n<data>\r\n -> INSERTED <id>\r\n
 *   reserve\r\n                      -> RESERVED <id> <bytes>\r\n<data>\r\n
 *   delete <id>\r\n                  -> DELETED\r\n
 *   stats\r\n                        -> OK <ready> <reserved>\r\n
 *   quit\r\n / shutdown\r\n
 *
 * Beanstalkd is the paper's worst performer under VARAN (1.52-1.77x)
 * because its tiny request/response pairs produce the highest syscall
 * rate per byte of useful work; vqueue reproduces that profile.
 */

#ifndef VARAN_APPS_VQUEUE_H
#define VARAN_APPS_VQUEUE_H

#include <cstdint>
#include <deque>
#include <map>
#include <string>

namespace varan::apps::vqueue {

struct Job {
    std::uint64_t id;
    std::string data;
};

/** Queue logic, unit-testable without sockets. */
class JobQueue
{
  public:
    std::uint64_t put(std::string data);
    bool reserve(Job *out);          ///< moves a ready job to reserved
    bool erase(std::uint64_t id);    ///< delete a reserved/ready job
    std::size_t readyCount() const { return ready_.size(); }
    std::size_t reservedCount() const { return reserved_.size(); }

  private:
    std::uint64_t next_id_ = 1;
    std::deque<Job> ready_;
    std::map<std::uint64_t, Job> reserved_;
};

struct Options {
    std::string endpoint = "varan-vqueue";
};

/** Run until a client sends "shutdown". */
int serve(const Options &options);

} // namespace varan::apps::vqueue

#endif // VARAN_APPS_VQUEUE_H
