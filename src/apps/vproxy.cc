#include "apps/vproxy.h"

#include <sys/epoll.h>
#include <sys/syscall.h>
#include <sys/wait.h>
#include <unistd.h>
#include <unordered_map>

#include "apps/vhttpd.h"
#include "netio/eventloop.h"
#include "netio/socketio.h"
#include "syscalls/sys.h"

namespace varan::apps::vproxy {

namespace {

struct Client {
    std::string inbuf;
};

/** Worker process: accept + serve until /__shutdown, then signal. */
int
workerMain(int listen_fd, int shutdown_wr, std::size_t page_bytes)
{
    netio::EventLoop loop;
    if (!loop.valid())
        return 66;
    std::string page(page_bytes, 'x');
    std::unordered_map<int, Client> clients;

    std::function<void(int)> close_client = [&](int fd) {
        loop.remove(fd);
        clients.erase(fd);
        sys::vclose(fd);
    };

    auto on_client = [&](int fd) {
        return [&, fd](std::uint32_t events) {
            if (events & (EPOLLHUP | EPOLLERR)) {
                close_client(fd);
                return;
            }
            char buf[4096];
            long n = sys::vread(fd, buf, sizeof(buf));
            if (n <= 0) {
                close_client(fd);
                return;
            }
            Client &client = clients[fd];
            client.inbuf.append(buf, static_cast<std::size_t>(n));
            for (;;) {
                vhttpd::Request req = vhttpd::parseRequest(client.inbuf);
                if (!req.complete)
                    break;
                client.inbuf.erase(0, req.consumed);
                if (req.path == "/__shutdown") {
                    std::string bye =
                        vhttpd::makeResponse(200, "OK", "bye", false);
                    netio::sendAll(fd, bye.data(), bye.size());
                    char one = 1;
                    sys::vwrite(shutdown_wr, &one, 1);
                    loop.stop();
                    return;
                }
                std::string response = vhttpd::makeResponse(
                    200, "OK", page, req.keep_alive);
                netio::sendAll(fd, response.data(), response.size());
                if (!req.keep_alive) {
                    close_client(fd);
                    return;
                }
            }
        };
    };

    loop.add(listen_fd, EPOLLIN, [&](std::uint32_t) {
        long fd = netio::acceptConnection(listen_fd, false);
        if (fd < 0)
            return; // another worker won the race
        clients[static_cast<int>(fd)] = Client{};
        loop.add(static_cast<int>(fd), EPOLLIN,
                 on_client(static_cast<int>(fd)));
    });

    loop.run(50);
    for (auto &entry : clients)
        sys::vclose(entry.first);
    return 0;
}

} // namespace

int
serve(const Options &options)
{
    auto listen = netio::listenAbstract(options.endpoint);
    if (!listen.ok())
        return 65;
    const int listen_fd = listen.value();

    // Workers announce shutdown over this pipe (streamed syscalls, so
    // every variant's master reacts at the same stream position).
    int shutdown_pipe[2];
    if (sys::vpipe2(shutdown_pipe, 0) < 0)
        return 67;

    std::vector<pid_t> workers;
    for (int w = 0; w < options.workers; ++w) {
        long pid = sys::invoke(SYS_fork);
        if (pid < 0)
            return 68;
        if (pid == 0) {
            int status = workerMain(listen_fd, shutdown_pipe[1],
                                    options.page_bytes);
            sys::vexit(status);
        }
        workers.push_back(static_cast<pid_t>(pid));
    }

    // Master parks on the shutdown pipe (a blocking read through the
    // engine), then asks the kernel to end the other workers. kill()
    // is process-local: each variant signals its own children.
    char byte = 0;
    sys::vread(shutdown_pipe[0], &byte, 1);
    for (pid_t pid : workers)
        ::kill(pid, SIGTERM);
    for (pid_t pid : workers) {
        int status = 0;
        ::waitpid(pid, &status, 0);
    }
    sys::vclose(shutdown_pipe[0]);
    sys::vclose(shutdown_pipe[1]);
    sys::vclose(listen_fd);
    return 0;
}

} // namespace varan::apps::vproxy
