/**
 * @file
 * vstore: the Redis archetype — a single-threaded, epoll-driven,
 * in-memory key-value data store speaking an inline variant of RESP.
 *
 * Commands: PING, ECHO, SET, GET, DEL, INCR, HSET, HGET, HMGET, LPUSH,
 * LRANGE, DBSIZE, FLUSHALL, SHUTDOWN.
 *
 * "Revisions" reproduce the paper's experiments: revision `7fb16ba`
 * introduced a crash on HMGET (the bug of section 5.1 / Redis issue
 * 344); a sanitizer build adds per-command checking work (section
 * 5.3). The store logic is separate from the server so protocol and
 * data structures unit-test without sockets.
 */

#ifndef VARAN_APPS_VSTORE_H
#define VARAN_APPS_VSTORE_H

#include <deque>
#include <string>
#include <unordered_map>
#include <vector>

namespace varan::apps::vstore {

/** Split an inline command into arguments (RESP inline syntax). */
std::vector<std::string> parseCommand(const std::string &line);

/** The data store: string, hash and list types, Redis-style. */
class Store
{
  public:
    /** Execute one command; returns the RESP-encoded reply. */
    std::string apply(const std::vector<std::string> &args);

    std::size_t size() const;

  private:
    std::string cmdSet(const std::vector<std::string> &args);
    std::string cmdGet(const std::vector<std::string> &args);
    std::string cmdDel(const std::vector<std::string> &args);
    std::string cmdIncr(const std::vector<std::string> &args);
    std::string cmdHset(const std::vector<std::string> &args);
    std::string cmdHget(const std::vector<std::string> &args);
    std::string cmdHmget(const std::vector<std::string> &args);
    std::string cmdLpush(const std::vector<std::string> &args);
    std::string cmdLrange(const std::vector<std::string> &args);

    std::unordered_map<std::string, std::string> strings_;
    std::unordered_map<std::string,
                       std::unordered_map<std::string, std::string>>
        hashes_;
    std::unordered_map<std::string, std::deque<std::string>> lists_;
};

// --- RESP reply builders (exposed for tests) ---
std::string replySimple(const std::string &s);
std::string replyError(const std::string &s);
std::string replyInteger(long long v);
std::string replyBulk(const std::string &s);
std::string replyNil();

/** Behaviour knobs defining a "revision" of the application. */
struct Revision {
    /** Revision 7fb16ba: segfault while serving HMGET (section 5.1). */
    bool crash_on_hmget = false;
    /** Sanitizer build: extra checking work per command (section 5.3);
     *  the value approximates ASan's ~2x slowdown in extra loops. */
    int sanitize_passes = 0;
};

/** Server options. */
struct Options {
    std::string endpoint = "varan-vstore"; ///< abstract socket name
    Revision revision;
    /** Serve until a SHUTDOWN command arrives. */
};

/**
 * Run the server (blocking) until a client sends SHUTDOWN.
 * @return exit status (0 on clean shutdown).
 */
int serve(const Options &options);

} // namespace varan::apps::vstore

#endif // VARAN_APPS_VSTORE_H
