/**
 * @file
 * vproxy: the Nginx archetype — a prefork multi-process HTTP server.
 * The master opens the listening socket and forks N workers (process
 * tuples under N-version execution, section 3.3.3); each worker runs
 * its own epoll loop accepting from the shared descriptor, exactly the
 * nginx worker model.
 */

#ifndef VARAN_APPS_VPROXY_H
#define VARAN_APPS_VPROXY_H

#include <string>

namespace varan::apps::vproxy {

struct Options {
    std::string endpoint = "varan-vproxy";
    int workers = 2;          ///< forked worker processes
    std::size_t page_bytes = 4096;
};

/** Run until a GET /__shutdown arrives at any worker. */
int serve(const Options &options);

} // namespace varan::apps::vproxy

#endif // VARAN_APPS_VPROXY_H
