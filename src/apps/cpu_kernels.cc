#include "apps/cpu_kernels.h"

#include <algorithm>
#include <array>
#include <cstring>
#include <functional>
#include <queue>
#include <string>
#include <unordered_map>

#include "syscalls/sys.h"

namespace varan::apps::cpu {

namespace {

/** Deterministic PRNG shared by all kernels. */
struct Rng {
    std::uint64_t state;
    explicit Rng(std::uint64_t seed) : state(seed * 2654435761u + 1) {}

    std::uint64_t
    next()
    {
        state ^= state << 13;
        state ^= state >> 7;
        state ^= state << 17;
        return state;
    }

    std::uint32_t next32() { return static_cast<std::uint32_t>(next()); }
};

/** SPEC does a little I/O; one timestamp per outer pass mirrors it. */
void
sparseSyscall()
{
    long t = 0;
    sys::vtime(&t);
}

// --- CPU2000-flavoured kernels ---

/** 164.gzip: LZ77-style greedy compression over synthetic text. */
std::uint64_t
kGzip(std::uint32_t scale)
{
    Rng rng(164);
    std::string data;
    data.reserve(scale * 4096);
    static const char *words[] = {"the", "quick", "brown", "fox",
                                  "jumps", "over", "lazy", "dog"};
    for (std::uint32_t i = 0; i < scale * 512; ++i) {
        data += words[rng.next() % 8];
        data += ' ';
    }
    std::uint64_t sum = 0;
    for (std::uint32_t pass = 0; pass < 4; ++pass) {
        sparseSyscall();
        std::size_t i = 0;
        std::size_t emitted = 0;
        while (i < data.size()) {
            std::size_t best_len = 0;
            std::size_t window = i > 4096 ? i - 4096 : 0;
            for (std::size_t j = window; j + 3 < i; j += 7) {
                std::size_t len = 0;
                while (i + len < data.size() && len < 64 &&
                       data[j + len] == data[i + len]) {
                    ++len;
                }
                if (len > best_len)
                    best_len = len;
            }
            if (best_len >= 4) {
                i += best_len;
                emitted += 3;
            } else {
                ++i;
                ++emitted;
            }
        }
        sum += emitted;
    }
    return sum;
}

/** 175.vpr: simulated-annealing placement on a grid. */
std::uint64_t
kVpr(std::uint32_t scale)
{
    Rng rng(175);
    const std::uint32_t n = 64 + scale * 16;
    std::vector<std::uint32_t> cell_x(n), cell_y(n);
    std::vector<std::pair<std::uint32_t, std::uint32_t>> nets;
    for (std::uint32_t i = 0; i < n; ++i) {
        cell_x[i] = rng.next32() % 64;
        cell_y[i] = rng.next32() % 64;
    }
    for (std::uint32_t i = 0; i < n * 2; ++i)
        nets.emplace_back(rng.next32() % n, rng.next32() % n);

    auto cost = [&]() {
        std::uint64_t c = 0;
        for (auto &net : nets) {
            c += std::abs(int(cell_x[net.first]) - int(cell_x[net.second]));
            c += std::abs(int(cell_y[net.first]) - int(cell_y[net.second]));
        }
        return c;
    };
    std::uint64_t best = cost();
    for (std::uint32_t temp = 100; temp > 0; --temp) {
        if (temp % 20 == 0)
            sparseSyscall();
        for (std::uint32_t move = 0; move < n; ++move) {
            std::uint32_t cell = rng.next32() % n;
            std::uint32_t ox = cell_x[cell], oy = cell_y[cell];
            cell_x[cell] = rng.next32() % 64;
            cell_y[cell] = rng.next32() % 64;
            std::uint64_t c = cost();
            if (c < best || rng.next32() % 100 < temp) {
                best = std::min(best, c);
            } else {
                cell_x[cell] = ox;
                cell_y[cell] = oy;
            }
        }
    }
    return best;
}

/** 176.gcc: expression parsing and constant folding. */
std::uint64_t
kGcc(std::uint32_t scale)
{
    Rng rng(176);
    std::uint64_t sum = 0;
    for (std::uint32_t iter = 0; iter < scale * 200; ++iter) {
        if (iter % 64 == 0)
            sparseSyscall();
        // Build a random arithmetic expression in RPN and fold it.
        std::vector<long long> stack;
        stack.push_back(static_cast<long long>(rng.next32() % 1000));
        for (int op = 0; op < 40; ++op) {
            switch (rng.next32() % 4) {
              case 0:
                stack.push_back(
                    static_cast<long long>(rng.next32() % 1000));
                break;
              case 1:
                if (stack.size() >= 2) {
                    long long b = stack.back();
                    stack.pop_back();
                    stack.back() += b;
                }
                break;
              case 2:
                if (stack.size() >= 2) {
                    long long b = stack.back();
                    stack.pop_back();
                    stack.back() *= (b % 7 + 1);
                }
                break;
              default:
                if (!stack.empty())
                    stack.back() ^= 0x5a5a;
            }
        }
        for (long long v : stack)
            sum += static_cast<std::uint64_t>(v);
    }
    return sum;
}

/** 181.mcf: Bellman-Ford shortest paths (network simplex stand-in). */
std::uint64_t
kMcf(std::uint32_t scale)
{
    Rng rng(181);
    const std::uint32_t n = 128 + scale * 32;
    struct Edge { std::uint32_t a, b; std::uint32_t w; };
    std::vector<Edge> edges;
    for (std::uint32_t i = 0; i < n * 4; ++i)
        edges.push_back({rng.next32() % n, rng.next32() % n,
                         rng.next32() % 100 + 1});
    std::vector<std::uint64_t> dist(n, ~0ULL);
    dist[0] = 0;
    for (std::uint32_t round = 0; round + 1 < n; ++round) {
        if (round % 64 == 0)
            sparseSyscall();
        bool changed = false;
        for (const Edge &e : edges) {
            if (dist[e.a] != ~0ULL && dist[e.a] + e.w < dist[e.b]) {
                dist[e.b] = dist[e.a] + e.w;
                changed = true;
            }
        }
        if (!changed)
            break;
    }
    std::uint64_t sum = 0;
    for (std::uint64_t d : dist)
        sum += d == ~0ULL ? 1 : d;
    return sum;
}

/** 186.crafty: bitboard manipulation (population counts, attacks). */
std::uint64_t
kCrafty(std::uint32_t scale)
{
    Rng rng(186);
    std::uint64_t sum = 0;
    for (std::uint32_t iter = 0; iter < scale * 40000; ++iter) {
        if (iter % 8192 == 0)
            sparseSyscall();
        std::uint64_t occ = rng.next();
        std::uint64_t attacks = 0;
        std::uint64_t sq = rng.next() % 64;
        // Rook rays with blocking.
        for (int d : {1, -1, 8, -8}) {
            for (int s = static_cast<int>(sq) + d;
                 s >= 0 && s < 64; s += d) {
                attacks |= 1ULL << s;
                if (occ & (1ULL << s))
                    break;
                if ((d == 1 || d == -1) && (s % 8 == 0 || s % 8 == 7))
                    break;
            }
        }
        sum += static_cast<std::uint64_t>(
            __builtin_popcountll(attacks ^ occ));
    }
    return sum;
}

/** 197.parser: tokenising + bracket matching over generated text. */
std::uint64_t
kParser(std::uint32_t scale)
{
    Rng rng(197);
    std::string text;
    for (std::uint32_t i = 0; i < scale * 2000; ++i) {
        switch (rng.next32() % 6) {
          case 0: text += "("; break;
          case 1: text += ")"; break;
          case 2: text += "word "; break;
          case 3: text += "42 "; break;
          case 4: text += "[x] "; break;
          default: text += ", "; break;
        }
    }
    std::uint64_t tokens = 0;
    long depth = 0, max_depth = 0;
    for (std::uint32_t pass = 0; pass < 8; ++pass) {
        sparseSyscall();
        for (char c : text) {
            if (c == '(') {
                ++depth;
                max_depth = std::max(max_depth, depth);
            } else if (c == ')') {
                --depth;
            } else if (c == ' ') {
                ++tokens;
            }
        }
    }
    return tokens + static_cast<std::uint64_t>(max_depth);
}

/** 252.eon: ray-sphere intersection batches (fixed point). */
std::uint64_t
kEon(std::uint32_t scale)
{
    Rng rng(252);
    std::uint64_t hits = 0;
    for (std::uint32_t iter = 0; iter < scale * 20000; ++iter) {
        if (iter % 4096 == 0)
            sparseSyscall();
        long ox = static_cast<long>(rng.next32() % 2000) - 1000;
        long oy = static_cast<long>(rng.next32() % 2000) - 1000;
        long oz = static_cast<long>(rng.next32() % 2000) - 1000;
        long r = static_cast<long>(rng.next32() % 500) + 1;
        // Ray from origin along +x: hit iff yz-distance <= r and x ahead.
        if (oy * oy + oz * oz <= r * r && ox > 0)
            ++hits;
    }
    return hits;
}

/** 253.perlbmk: glob-style pattern matching over strings. */
std::uint64_t
kPerlbmk(std::uint32_t scale)
{
    Rng rng(253);
    auto matches = [](const char *pat, const char *str) {
        // Classic iterative glob with * and ?.
        const char *star = nullptr, *ss = nullptr;
        while (*str) {
            if (*pat == '?' || *pat == *str) {
                ++pat;
                ++str;
            } else if (*pat == '*') {
                star = pat++;
                ss = str;
            } else if (star) {
                pat = star + 1;
                str = ++ss;
            } else {
                return false;
            }
        }
        while (*pat == '*')
            ++pat;
        return *pat == '\0';
    };
    static const char *pats[] = {"a*b?c", "*xyz*", "??abc*", "*", "q*q"};
    std::uint64_t count = 0;
    for (std::uint32_t iter = 0; iter < scale * 8000; ++iter) {
        if (iter % 2048 == 0)
            sparseSyscall();
        char str[32];
        std::uint32_t len = 8 + rng.next32() % 20;
        for (std::uint32_t i = 0; i < len; ++i)
            str[i] = static_cast<char>('a' + rng.next32() % 26);
        str[len] = '\0';
        if (matches(pats[iter % 5], str))
            ++count;
    }
    return count;
}

/** 254.gap: modular bignum arithmetic (group-order computations). */
std::uint64_t
kGap(std::uint32_t scale)
{
    std::uint64_t sum = 0;
    for (std::uint32_t iter = 0; iter < scale * 4000; ++iter) {
        if (iter % 1024 == 0)
            sparseSyscall();
        // Modular exponentiation with 64-bit words.
        std::uint64_t base = 6364136223846793005ULL + iter;
        std::uint64_t exp = 0x10001 + iter * 7;
        std::uint64_t mod = 0xffffffffffc5ULL;
        __uint128_t acc = 1, b = base % mod;
        while (exp) {
            if (exp & 1)
                acc = acc * b % mod;
            b = b * b % mod;
            exp >>= 1;
        }
        sum += static_cast<std::uint64_t>(acc);
    }
    return sum;
}

/** 255.vortex: object store insert/lookup/delete transactions. */
std::uint64_t
kVortex(std::uint32_t scale)
{
    Rng rng(255);
    std::unordered_map<std::uint64_t, std::vector<std::uint32_t>> db;
    std::uint64_t sum = 0;
    for (std::uint32_t txn = 0; txn < scale * 6000; ++txn) {
        if (txn % 2048 == 0)
            sparseSyscall();
        std::uint64_t key = rng.next() % 4096;
        switch (rng.next32() % 3) {
          case 0: {
            auto &obj = db[key];
            obj.push_back(rng.next32());
            if (obj.size() > 16)
                obj.erase(obj.begin());
            break;
          }
          case 1: {
            auto it = db.find(key);
            if (it != db.end())
                for (std::uint32_t v : it->second)
                    sum += v & 0xff;
            break;
          }
          default:
            db.erase(key);
        }
    }
    return sum + db.size();
}

/** 256.bzip2: Burrows-Wheeler transform over blocks. */
std::uint64_t
kBzip2(std::uint32_t scale)
{
    Rng rng(256);
    std::uint64_t sum = 0;
    const std::size_t block = 2048;
    for (std::uint32_t iter = 0; iter < scale * 4; ++iter) {
        sparseSyscall();
        std::string data(block, '\0');
        for (auto &c : data)
            c = static_cast<char>('a' + rng.next32() % 4);
        // Sort rotations (index sort, O(n^2 log n) but n is small).
        std::vector<std::uint32_t> idx(block);
        for (std::uint32_t i = 0; i < block; ++i)
            idx[i] = i;
        std::sort(idx.begin(), idx.end(),
                  [&](std::uint32_t a, std::uint32_t b) {
                      for (std::size_t k = 0; k < block; ++k) {
                          char ca = data[(a + k) % block];
                          char cb = data[(b + k) % block];
                          if (ca != cb)
                              return ca < cb;
                      }
                      return a < b;
                  });
        for (std::uint32_t i = 0; i < block; ++i)
            sum += static_cast<std::uint8_t>(
                       data[(idx[i] + block - 1) % block]) *
                   (i + 1);
    }
    return sum;
}

/** 300.twolf: channel-routing cost relaxation on a grid. */
std::uint64_t
kTwolf(std::uint32_t scale)
{
    Rng rng(300);
    const std::size_t dim = 64;
    std::vector<std::uint32_t> grid(dim * dim);
    for (auto &g : grid)
        g = rng.next32() % 100;
    for (std::uint32_t pass = 0; pass < scale * 30; ++pass) {
        if (pass % 8 == 0)
            sparseSyscall();
        for (std::size_t y = 1; y + 1 < dim; ++y) {
            for (std::size_t x = 1; x + 1 < dim; ++x) {
                std::uint32_t &c = grid[y * dim + x];
                std::uint32_t best = std::min(
                    {grid[(y - 1) * dim + x], grid[(y + 1) * dim + x],
                     grid[y * dim + x - 1], grid[y * dim + x + 1]});
                c = std::min(c, best + 1);
            }
        }
    }
    std::uint64_t sum = 0;
    for (std::uint32_t g : grid)
        sum += g;
    return sum;
}

// --- CPU2006-flavoured kernels ---

/** 400.perlbench: string hashing and interpolation. */
std::uint64_t
kPerlbench(std::uint32_t scale)
{
    Rng rng(400);
    std::unordered_map<std::string, std::uint64_t> hash;
    std::uint64_t sum = 0;
    for (std::uint32_t iter = 0; iter < scale * 8000; ++iter) {
        if (iter % 2048 == 0)
            sparseSyscall();
        std::string key = "var" + std::to_string(rng.next32() % 512);
        hash[key] += iter;
        std::string interpolated = "value of " + key + " is " +
                                   std::to_string(hash[key]);
        sum += interpolated.size();
    }
    return sum;
}

/** 401.bzip2: move-to-front + RLE pipeline. */
std::uint64_t
kBzip2b(std::uint32_t scale)
{
    Rng rng(401);
    std::uint64_t sum = 0;
    for (std::uint32_t iter = 0; iter < scale * 24; ++iter) {
        if (iter % 8 == 0)
            sparseSyscall();
        std::array<std::uint8_t, 256> mtf;
        for (int i = 0; i < 256; ++i)
            mtf[i] = static_cast<std::uint8_t>(i);
        std::uint8_t prev = 0;
        std::uint32_t run = 0;
        for (std::uint32_t i = 0; i < 16384; ++i) {
            std::uint8_t sym =
                static_cast<std::uint8_t>(rng.next32() % 16);
            // Move-to-front.
            int pos = 0;
            while (mtf[pos] != sym)
                ++pos;
            std::memmove(&mtf[1], &mtf[0], static_cast<std::size_t>(pos));
            mtf[0] = sym;
            // Run-length accounting.
            if (pos == static_cast<int>(prev)) {
                ++run;
            } else {
                sum += run * prev;
                run = 1;
                prev = static_cast<std::uint8_t>(pos);
            }
        }
        sum += run * prev;
    }
    return sum;
}

/** 403.gcc: control-flow graph dominator-ish dataflow. */
std::uint64_t
kGcc06(std::uint32_t scale)
{
    Rng rng(403);
    const std::uint32_t n = 256 + scale * 64;
    std::vector<std::vector<std::uint32_t>> preds(n);
    for (std::uint32_t i = 1; i < n; ++i) {
        preds[i].push_back(rng.next32() % i);
        if (i > 4)
            preds[i].push_back(rng.next32() % i);
    }
    std::vector<std::uint64_t> in(n, ~0ULL), out(n, 0);
    out[0] = 1;
    in[0] = 0;
    for (std::uint32_t round = 0; round < 40; ++round) {
        if (round % 8 == 0)
            sparseSyscall();
        for (std::uint32_t i = 1; i < n; ++i) {
            std::uint64_t meet = ~0ULL;
            for (std::uint32_t p : preds[i])
                meet &= out[p];
            in[i] = meet;
            out[i] = meet | (1ULL << (i % 64));
        }
    }
    std::uint64_t sum = 0;
    for (std::uint32_t i = 0; i < n; ++i)
        sum += __builtin_popcountll(out[i]);
    return sum;
}

/** 429.mcf: SPFA relaxation (bigger instance). */
std::uint64_t
kMcf06(std::uint32_t scale)
{
    return kMcf(scale * 2) ^ 0x2006;
}

/** 445.gobmk: flood fill + liberty counting on a Go board. */
std::uint64_t
kGobmk(std::uint32_t scale)
{
    Rng rng(445);
    constexpr int dim = 19;
    std::uint64_t sum = 0;
    for (std::uint32_t game = 0; game < scale * 300; ++game) {
        if (game % 64 == 0)
            sparseSyscall();
        std::array<std::uint8_t, dim * dim> board = {};
        for (auto &p : board)
            p = static_cast<std::uint8_t>(rng.next32() % 3);
        std::array<bool, dim * dim> seen = {};
        for (int start = 0; start < dim * dim; ++start) {
            if (seen[start] || board[start] == 0)
                continue;
            // Flood fill the group, counting liberties.
            std::vector<int> stack = {start};
            int liberties = 0;
            std::uint8_t colour = board[start];
            while (!stack.empty()) {
                int p = stack.back();
                stack.pop_back();
                if (seen[p])
                    continue;
                seen[p] = true;
                int x = p % dim, y = p / dim;
                const int nbr[4][2] = {{x - 1, y}, {x + 1, y},
                                       {x, y - 1}, {x, y + 1}};
                for (auto &nb : nbr) {
                    if (nb[0] < 0 || nb[0] >= dim || nb[1] < 0 ||
                        nb[1] >= dim) {
                        continue;
                    }
                    int q = nb[1] * dim + nb[0];
                    if (board[q] == 0)
                        ++liberties;
                    else if (board[q] == colour && !seen[q])
                        stack.push_back(q);
                }
            }
            sum += static_cast<std::uint64_t>(liberties);
        }
    }
    return sum;
}

/** 456.hmmer: Viterbi over a small profile HMM (integer scores). */
std::uint64_t
kHmmer(std::uint32_t scale)
{
    Rng rng(456);
    constexpr int states = 32;
    std::array<std::array<int, states>, states> trans;
    for (auto &row : trans)
        for (int &t : row)
            t = static_cast<int>(rng.next32() % 16);
    std::uint64_t sum = 0;
    for (std::uint32_t seq = 0; seq < scale * 120; ++seq) {
        if (seq % 32 == 0)
            sparseSyscall();
        std::array<long, states> score = {};
        for (int step = 0; step < 256; ++step) {
            std::array<long, states> next;
            int emit = static_cast<int>(rng.next32() % 8);
            for (int s = 0; s < states; ++s) {
                long best = -1;
                for (int p = 0; p < states; ++p)
                    best = std::max(best, score[p] + trans[p][s]);
                next[s] = best + emit;
            }
            score = next;
        }
        sum += static_cast<std::uint64_t>(
            *std::max_element(score.begin(), score.end()));
    }
    return sum;
}

/** 458.sjeng: alpha-beta search over a synthetic game tree. */
std::uint64_t
kSjeng(std::uint32_t scale)
{
    std::uint64_t nodes = 0;
    // Deterministic tree: value from node id hashing.
    std::function<long(std::uint64_t, int, long, long)> search =
        [&](std::uint64_t id, int depth, long alpha, long beta) -> long {
        ++nodes;
        if (depth == 0)
            return static_cast<long>((id * 2654435761u) % 200) - 100;
        for (int move = 0; move < 5; ++move) {
            long v = -search(id * 5 + move + 1, depth - 1, -beta, -alpha);
            if (v > alpha)
                alpha = v;
            if (alpha >= beta)
                break;
        }
        return alpha;
    };
    std::uint64_t sum = 0;
    for (std::uint32_t root = 0; root < scale * 6; ++root) {
        sparseSyscall();
        sum += static_cast<std::uint64_t>(
            search(root, 6, -100000, 100000) + 100000);
    }
    return sum + nodes;
}

/** 462.libquantum: quantum register gate simulation (bit tricks). */
std::uint64_t
kLibquantum(std::uint32_t scale)
{
    Rng rng(462);
    std::vector<std::uint64_t> amplitudes(1 << 12);
    for (auto &a : amplitudes)
        a = rng.next();
    for (std::uint32_t gate = 0; gate < scale * 120; ++gate) {
        if (gate % 32 == 0)
            sparseSyscall();
        unsigned target = rng.next32() % 12;
        // "CNOT": swap amplitude pairs that differ in the target bit.
        for (std::size_t i = 0; i < amplitudes.size(); ++i) {
            std::size_t j = i ^ (1ULL << target);
            if (i < j)
                std::swap(amplitudes[i], amplitudes[j]);
        }
        // "Phase": mix a rotating constant into half the register.
        for (std::size_t i = 0; i < amplitudes.size(); ++i) {
            if (i & (1ULL << target))
                amplitudes[i] = amplitudes[i] * 6364136223846793005ULL +
                                1442695040888963407ULL;
        }
    }
    std::uint64_t sum = 0;
    for (std::uint64_t a : amplitudes)
        sum ^= a;
    return sum;
}

/** 464.h264ref: sum-of-absolute-differences motion search. */
std::uint64_t
kH264(std::uint32_t scale)
{
    Rng rng(464);
    constexpr int dim = 128;
    std::vector<std::uint8_t> frame0(dim * dim), frame1(dim * dim);
    for (auto &p : frame0)
        p = static_cast<std::uint8_t>(rng.next32());
    for (std::size_t i = 0; i < frame1.size(); ++i)
        frame1[i] = static_cast<std::uint8_t>(
            frame0[i] + (rng.next32() % 8) - 4);
    std::uint64_t sum = 0;
    for (std::uint32_t mb = 0; mb < scale * 200; ++mb) {
        if (mb % 64 == 0)
            sparseSyscall();
        int bx = static_cast<int>(rng.next32() % (dim - 24)) + 8;
        int by = static_cast<int>(rng.next32() % (dim - 24)) + 8;
        std::uint32_t best = ~0u;
        for (int dy = -8; dy <= 8; ++dy) {
            for (int dx = -8; dx <= 8; ++dx) {
                std::uint32_t sad = 0;
                for (int y = 0; y < 8; ++y)
                    for (int x = 0; x < 8; ++x)
                        sad += static_cast<std::uint32_t>(std::abs(
                            int(frame0[(by + y) * dim + bx + x]) -
                            int(frame1[(by + y + dy) * dim + bx + x +
                                       dx])));
                best = std::min(best, sad);
            }
        }
        sum += best;
    }
    return sum;
}

/** 471.omnetpp: discrete-event simulation with a priority queue. */
std::uint64_t
kOmnetpp(std::uint32_t scale)
{
    Rng rng(471);
    using Event = std::pair<std::uint64_t, std::uint32_t>; // time, node
    std::priority_queue<Event, std::vector<Event>, std::greater<>> queue;
    for (int i = 0; i < 64; ++i)
        queue.push({rng.next() % 1000, rng.next32() % 64});
    std::uint64_t processed = 0, clock = 0;
    const std::uint64_t budget = scale * 120000ULL;
    while (!queue.empty() && processed < budget) {
        if (processed % 16384 == 0)
            sparseSyscall();
        auto [time, node] = queue.top();
        queue.pop();
        clock = time;
        ++processed;
        // Each event schedules 0-2 future events; keep the queue fed.
        std::uint32_t fanout = rng.next32() % 3;
        if (queue.size() < 32)
            fanout = 2;
        for (std::uint32_t f = 0; f < fanout && queue.size() < 512; ++f)
            queue.push({clock + 1 + rng.next() % 100,
                        (node + rng.next32()) % 64});
    }
    return processed + clock;
}

/** 473.astar: A* over random grids with obstacles. */
std::uint64_t
kAstar(std::uint32_t scale)
{
    Rng rng(473);
    constexpr int dim = 64;
    std::uint64_t total = 0;
    for (std::uint32_t map = 0; map < scale * 60; ++map) {
        if (map % 16 == 0)
            sparseSyscall();
        std::array<bool, dim * dim> blocked = {};
        for (auto &&b : blocked)
            b = rng.next32() % 100 < 25;
        blocked[0] = blocked[dim * dim - 1] = false;
        using Node = std::pair<std::uint32_t, std::uint32_t>; // f, idx
        std::priority_queue<Node, std::vector<Node>, std::greater<>> open;
        std::array<std::uint32_t, dim * dim> g;
        g.fill(~0u);
        g[0] = 0;
        open.push({0, 0});
        std::uint32_t expanded = 0;
        while (!open.empty()) {
            auto [f, idx] = open.top();
            open.pop();
            if (idx == dim * dim - 1)
                break;
            ++expanded;
            int x = static_cast<int>(idx) % dim;
            int y = static_cast<int>(idx) / dim;
            const int nbr[4][2] = {{x - 1, y}, {x + 1, y}, {x, y - 1},
                                   {x, y + 1}};
            for (auto &nb : nbr) {
                if (nb[0] < 0 || nb[0] >= dim || nb[1] < 0 ||
                    nb[1] >= dim) {
                    continue;
                }
                auto q = static_cast<std::uint32_t>(nb[1] * dim + nb[0]);
                if (blocked[q] || g[q] <= g[idx] + 1)
                    continue;
                g[q] = g[idx] + 1;
                std::uint32_t h = static_cast<std::uint32_t>(
                    (dim - 1 - nb[0]) + (dim - 1 - nb[1]));
                open.push({g[q] + h, q});
            }
        }
        total += expanded;
    }
    return total;
}

/** 483.xalancbmk: tree transformation (XML-ish path rewriting). */
std::uint64_t
kXalanc(std::uint32_t scale)
{
    Rng rng(483);
    struct Node {
        std::uint32_t tag;
        std::vector<std::uint32_t> children; // indices
    };
    std::vector<Node> tree(1);
    for (std::uint32_t i = 1; i < 2000; ++i) {
        tree.push_back({rng.next32() % 16, {}});
        tree[rng.next32() % i].children.push_back(i);
    }
    std::uint64_t sum = 0;
    for (std::uint32_t pass = 0; pass < scale * 60; ++pass) {
        if (pass % 16 == 0)
            sparseSyscall();
        // Template: match nodes with tag==pass%16, emit transformed
        // subtree sizes.
        std::uint32_t want = pass % 16;
        std::function<std::uint32_t(std::uint32_t)> walk =
            [&](std::uint32_t idx) -> std::uint32_t {
            std::uint32_t size = 1;
            for (std::uint32_t c : tree[idx].children)
                size += walk(c);
            if (tree[idx].tag == want)
                sum += size;
            return size;
        };
        walk(0);
    }
    return sum;
}

} // namespace

const std::vector<Kernel> &
cpu2000Suite()
{
    static const std::vector<Kernel> suite = {
        {"164.gzip", kGzip},       {"175.vpr", kVpr},
        {"176.gcc", kGcc},         {"181.mcf", kMcf},
        {"186.crafty", kCrafty},   {"197.parser", kParser},
        {"252.eon", kEon},         {"253.perlbmk", kPerlbmk},
        {"254.gap", kGap},         {"255.vortex", kVortex},
        {"256.bzip2", kBzip2},     {"300.twolf", kTwolf},
    };
    return suite;
}

const std::vector<Kernel> &
cpu2006Suite()
{
    static const std::vector<Kernel> suite = {
        {"400.perlbench", kPerlbench}, {"401.bzip2", kBzip2b},
        {"403.gcc", kGcc06},           {"429.mcf", kMcf06},
        {"445.gobmk", kGobmk},         {"456.hmmer", kHmmer},
        {"458.sjeng", kSjeng},         {"462.libquantum", kLibquantum},
        {"464.h264ref", kH264},        {"471.omnetpp", kOmnetpp},
        {"473.astar", kAstar},         {"483.xalancbmk", kXalanc},
    };
    return suite;
}

} // namespace varan::apps::cpu
