#include "apps/vstore.h"

#include <sys/epoll.h>

#include "netio/eventloop.h"
#include "netio/socketio.h"
#include "syscalls/sys.h"

// GCC 12's -Wrestrict misfires on `"lit" + std::string` once the
// libstdc++ string concatenation is fully inlined at -O3: the
// dead impossible-overlap branch of _M_replace survives into the
// diagnostic pass with bogus [PTRDIFF_MAX]-sized bounds (the
// GCC bugzilla PR105329 family, fixed in GCC 13). Every reply
// builder below trips it under Release + -Werror on GCC 12, so
// suppress that one diagnostic for this translation unit.
#if defined(__GNUC__) && !defined(__clang__) && __GNUC__ == 12
#pragma GCC diagnostic ignored "-Wrestrict"
#endif

namespace varan::apps::vstore {

std::vector<std::string>
parseCommand(const std::string &line)
{
    std::vector<std::string> out;
    std::size_t i = 0;
    while (i < line.size()) {
        while (i < line.size() && (line[i] == ' ' || line[i] == '\t'))
            ++i;
        if (i >= line.size())
            break;
        std::size_t start = i;
        if (line[i] == '"') {
            ++start;
            ++i;
            while (i < line.size() && line[i] != '"')
                ++i;
            out.push_back(line.substr(start, i - start));
            if (i < line.size())
                ++i;
        } else {
            while (i < line.size() && line[i] != ' ' && line[i] != '\t')
                ++i;
            out.push_back(line.substr(start, i - start));
        }
    }
    return out;
}

std::string
replySimple(const std::string &s)
{
    return "+" + s + "\r\n";
}

std::string
replyError(const std::string &s)
{
    return "-ERR " + s + "\r\n";
}

std::string
replyInteger(long long v)
{
    return ":" + std::to_string(v) + "\r\n";
}

std::string
replyBulk(const std::string &s)
{
    return "$" + std::to_string(s.size()) + "\r\n" + s + "\r\n";
}

std::string
replyNil()
{
    return "$-1\r\n";
}

std::size_t
Store::size() const
{
    return strings_.size() + hashes_.size() + lists_.size();
}

std::string
Store::cmdSet(const std::vector<std::string> &args)
{
    if (args.size() != 3)
        return replyError("wrong number of arguments for 'set'");
    strings_[args[1]] = args[2];
    return replySimple("OK");
}

std::string
Store::cmdGet(const std::vector<std::string> &args)
{
    if (args.size() != 2)
        return replyError("wrong number of arguments for 'get'");
    auto it = strings_.find(args[1]);
    return it == strings_.end() ? replyNil() : replyBulk(it->second);
}

std::string
Store::cmdDel(const std::vector<std::string> &args)
{
    if (args.size() < 2)
        return replyError("wrong number of arguments for 'del'");
    long long removed = 0;
    for (std::size_t i = 1; i < args.size(); ++i) {
        removed += strings_.erase(args[i]);
        removed += hashes_.erase(args[i]);
        removed += lists_.erase(args[i]);
    }
    return replyInteger(removed);
}

std::string
Store::cmdIncr(const std::vector<std::string> &args)
{
    if (args.size() != 2)
        return replyError("wrong number of arguments for 'incr'");
    auto &value = strings_[args[1]];
    long long v = 0;
    if (!value.empty()) {
        errno = 0;
        char *end = nullptr;
        v = std::strtoll(value.c_str(), &end, 10);
        if (errno != 0 || *end != '\0')
            return replyError("value is not an integer");
    }
    ++v;
    value = std::to_string(v);
    return replyInteger(v);
}

std::string
Store::cmdHset(const std::vector<std::string> &args)
{
    if (args.size() != 4)
        return replyError("wrong number of arguments for 'hset'");
    auto &hash = hashes_[args[1]];
    bool fresh = hash.find(args[2]) == hash.end();
    hash[args[2]] = args[3];
    return replyInteger(fresh ? 1 : 0);
}

std::string
Store::cmdHget(const std::vector<std::string> &args)
{
    if (args.size() != 3)
        return replyError("wrong number of arguments for 'hget'");
    auto hit = hashes_.find(args[1]);
    if (hit == hashes_.end())
        return replyNil();
    auto fit = hit->second.find(args[2]);
    return fit == hit->second.end() ? replyNil() : replyBulk(fit->second);
}

std::string
Store::cmdHmget(const std::vector<std::string> &args)
{
    if (args.size() < 3)
        return replyError("wrong number of arguments for 'hmget'");
    std::string out = "*" + std::to_string(args.size() - 2) + "\r\n";
    auto hit = hashes_.find(args[1]);
    for (std::size_t i = 2; i < args.size(); ++i) {
        if (hit == hashes_.end()) {
            out += replyNil();
            continue;
        }
        auto fit = hit->second.find(args[i]);
        out += fit == hit->second.end() ? replyNil()
                                        : replyBulk(fit->second);
    }
    return out;
}

std::string
Store::cmdLpush(const std::vector<std::string> &args)
{
    if (args.size() < 3)
        return replyError("wrong number of arguments for 'lpush'");
    auto &list = lists_[args[1]];
    for (std::size_t i = 2; i < args.size(); ++i)
        list.push_front(args[i]);
    return replyInteger(static_cast<long long>(list.size()));
}

std::string
Store::cmdLrange(const std::vector<std::string> &args)
{
    if (args.size() != 4)
        return replyError("wrong number of arguments for 'lrange'");
    auto it = lists_.find(args[1]);
    long long from = std::strtoll(args[2].c_str(), nullptr, 10);
    long long to = std::strtoll(args[3].c_str(), nullptr, 10);
    if (it == lists_.end())
        return "*0\r\n";
    const auto &list = it->second;
    long long n = static_cast<long long>(list.size());
    if (from < 0)
        from += n;
    if (to < 0)
        to += n;
    from = std::max(from, 0LL);
    to = std::min(to, n - 1);
    if (from > to)
        return "*0\r\n";
    std::string out = "*" + std::to_string(to - from + 1) + "\r\n";
    for (long long i = from; i <= to; ++i)
        out += replyBulk(list[static_cast<std::size_t>(i)]);
    return out;
}

std::string
Store::apply(const std::vector<std::string> &args)
{
    if (args.empty())
        return replyError("empty command");
    std::string cmd = args[0];
    for (char &c : cmd)
        c = static_cast<char>(std::toupper(static_cast<unsigned char>(c)));
    if (cmd == "PING")
        return replySimple("PONG");
    if (cmd == "ECHO")
        return args.size() == 2 ? replyBulk(args[1])
                                : replyError("echo needs one argument");
    if (cmd == "SET")
        return cmdSet(args);
    if (cmd == "GET")
        return cmdGet(args);
    if (cmd == "DEL")
        return cmdDel(args);
    if (cmd == "INCR")
        return cmdIncr(args);
    if (cmd == "HSET")
        return cmdHset(args);
    if (cmd == "HGET")
        return cmdHget(args);
    if (cmd == "HMGET")
        return cmdHmget(args);
    if (cmd == "LPUSH")
        return cmdLpush(args);
    if (cmd == "LRANGE")
        return cmdLrange(args);
    if (cmd == "DBSIZE")
        return replyInteger(static_cast<long long>(size()));
    if (cmd == "FLUSHALL") {
        strings_.clear();
        hashes_.clear();
        lists_.clear();
        return replySimple("OK");
    }
    return replyError("unknown command '" + args[0] + "'");
}

namespace {

/** Per-connection state for the inline protocol. */
struct Client {
    std::string inbuf;
};

/** Extra checking pass standing in for compiler sanitizer work. */
void
sanitizerWork(const std::vector<std::string> &args, int passes)
{
    std::uint32_t guard = 0;
    for (int p = 0; p < passes; ++p) {
        for (const std::string &a : args) {
            for (char c : a)
                guard += static_cast<std::uint8_t>(c) * 31u;
        }
    }
    // Keep the checking work observable to the optimiser.
    asm volatile("" :: "r"(guard));
}

} // namespace

int
serve(const Options &options)
{
    auto listen = netio::listenAbstract(options.endpoint);
    if (!listen.ok())
        return 65;
    const int listen_fd = listen.value();

    netio::EventLoop loop;
    if (!loop.valid())
        return 66;

    Store store;
    std::unordered_map<int, Client> clients;
    int status = 0;

    std::function<void(int)> close_client = [&](int fd) {
        loop.remove(fd);
        clients.erase(fd);
        sys::vclose(fd);
    };

    auto on_client = [&](int fd) {
        return [&, fd](std::uint32_t events) {
            if (events & (EPOLLHUP | EPOLLERR)) {
                close_client(fd);
                return;
            }
            char buf[4096];
            long n = sys::vread(fd, buf, sizeof(buf));
            if (n <= 0) {
                close_client(fd);
                return;
            }
            Client &client = clients[fd];
            client.inbuf.append(buf, static_cast<std::size_t>(n));
            std::size_t pos;
            while ((pos = client.inbuf.find('\n')) != std::string::npos) {
                std::string line = client.inbuf.substr(0, pos);
                client.inbuf.erase(0, pos + 1);
                if (!line.empty() && line.back() == '\r')
                    line.pop_back();
                if (line.empty())
                    continue;
                auto args = parseCommand(line);
                if (!args.empty() &&
                    (args[0] == "SHUTDOWN" || args[0] == "shutdown")) {
                    netio::sendAll(fd, "+OK\r\n", 5);
                    loop.stop();
                    return;
                }
                if (options.revision.crash_on_hmget && !args.empty() &&
                    (args[0] == "HMGET" || args[0] == "hmget")) {
                    // Revision 7fb16ba's bug: NULL dereference while
                    // serving HMGET (section 5.1).
                    int *bug = nullptr;
                    *bug = 344;
                }
                if (options.revision.sanitize_passes > 0)
                    sanitizerWork(args, options.revision.sanitize_passes);
                std::string reply = store.apply(args);
                netio::sendAll(fd, reply.data(), reply.size());
            }
        };
    };

    loop.add(listen_fd, EPOLLIN, [&](std::uint32_t) {
        long fd = netio::acceptConnection(listen_fd, false);
        if (fd < 0)
            return;
        clients[static_cast<int>(fd)] = Client{};
        loop.add(static_cast<int>(fd), EPOLLIN,
                 on_client(static_cast<int>(fd)));
    });

    loop.run();
    for (auto &entry : clients)
        sys::vclose(entry.first);
    sys::vclose(listen_fd);
    return status;
}

} // namespace varan::apps::vstore
