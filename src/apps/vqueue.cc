#include "apps/vqueue.h"

#include <sys/epoll.h>
#include <unordered_map>

#include "netio/eventloop.h"
#include "netio/socketio.h"
#include "syscalls/sys.h"

namespace varan::apps::vqueue {

std::uint64_t
JobQueue::put(std::string data)
{
    std::uint64_t id = next_id_++;
    ready_.push_back(Job{id, std::move(data)});
    return id;
}

bool
JobQueue::reserve(Job *out)
{
    if (ready_.empty())
        return false;
    Job job = std::move(ready_.front());
    ready_.pop_front();
    *out = job;
    reserved_[job.id] = std::move(job);
    return true;
}

bool
JobQueue::erase(std::uint64_t id)
{
    if (reserved_.erase(id) > 0)
        return true;
    for (auto it = ready_.begin(); it != ready_.end(); ++it) {
        if (it->id == id) {
            ready_.erase(it);
            return true;
        }
    }
    return false;
}

namespace {

struct Client {
    std::string inbuf;
};

} // namespace

int
serve(const Options &options)
{
    auto listen = netio::listenAbstract(options.endpoint);
    if (!listen.ok())
        return 65;
    const int listen_fd = listen.value();

    netio::EventLoop loop;
    if (!loop.valid())
        return 66;

    JobQueue queue;
    std::unordered_map<int, Client> clients;

    std::function<void(int)> close_client = [&](int fd) {
        loop.remove(fd);
        clients.erase(fd);
        sys::vclose(fd);
    };

    auto on_client = [&](int fd) {
        return [&, fd](std::uint32_t events) {
            if (events & (EPOLLHUP | EPOLLERR)) {
                close_client(fd);
                return;
            }
            char buf[4096];
            long n = sys::vread(fd, buf, sizeof(buf));
            if (n <= 0) {
                close_client(fd);
                return;
            }
            Client &client = clients[fd];
            client.inbuf.append(buf, static_cast<std::size_t>(n));

            for (;;) {
                std::size_t eol = client.inbuf.find("\r\n");
                if (eol == std::string::npos)
                    break;
                std::string line = client.inbuf.substr(0, eol);

                if (line.rfind("put ", 0) == 0) {
                    // put <pri> <delay> <ttr> <bytes>
                    std::size_t last_sp = line.rfind(' ');
                    std::size_t bytes = static_cast<std::size_t>(
                        std::strtoull(line.c_str() + last_sp + 1, nullptr,
                                      10));
                    if (client.inbuf.size() < eol + 2 + bytes + 2)
                        break; // need the body
                    std::string data =
                        client.inbuf.substr(eol + 2, bytes);
                    client.inbuf.erase(0, eol + 2 + bytes + 2);
                    std::uint64_t id = queue.put(std::move(data));
                    std::string reply =
                        "INSERTED " + std::to_string(id) + "\r\n";
                    netio::sendAll(fd, reply.data(), reply.size());
                    continue;
                }

                client.inbuf.erase(0, eol + 2);
                if (line == "reserve") {
                    Job job;
                    if (queue.reserve(&job)) {
                        std::string reply =
                            "RESERVED " + std::to_string(job.id) + " " +
                            std::to_string(job.data.size()) + "\r\n" +
                            job.data + "\r\n";
                        netio::sendAll(fd, reply.data(), reply.size());
                    } else {
                        netio::sendAll(fd, "TIMED_OUT\r\n", 11);
                    }
                } else if (line.rfind("delete ", 0) == 0) {
                    std::uint64_t id =
                        std::strtoull(line.c_str() + 7, nullptr, 10);
                    const char *reply = queue.erase(id)
                                            ? "DELETED\r\n"
                                            : "NOT_FOUND\r\n";
                    netio::sendAll(fd, reply, std::strlen(reply));
                } else if (line == "stats") {
                    std::string reply =
                        "OK " + std::to_string(queue.readyCount()) + " " +
                        std::to_string(queue.reservedCount()) + "\r\n";
                    netio::sendAll(fd, reply.data(), reply.size());
                } else if (line == "quit") {
                    close_client(fd);
                    return;
                } else if (line == "shutdown") {
                    netio::sendAll(fd, "BYE\r\n", 5);
                    loop.stop();
                    return;
                } else {
                    netio::sendAll(fd, "UNKNOWN_COMMAND\r\n", 17);
                }
            }
        };
    };

    loop.add(listen_fd, EPOLLIN, [&](std::uint32_t) {
        long fd = netio::acceptConnection(listen_fd, false);
        if (fd < 0)
            return;
        clients[static_cast<int>(fd)] = Client{};
        loop.add(static_cast<int>(fd), EPOLLIN,
                 on_client(static_cast<int>(fd)));
    });

    loop.run();
    for (auto &entry : clients)
        sys::vclose(entry.first);
    sys::vclose(listen_fd);
    return 0;
}

} // namespace varan::apps::vqueue
