/**
 * @file
 * CPU-bound kernel suites standing in for SPEC CPU2000 and CPU2006
 * (Figures 7 and 8). SPEC itself is proprietary; these kernels
 * reproduce the property the figures measure — compute-dominated
 * workloads with sparse system calls, where NVX overhead comes from
 * interception cost amortisation plus the memory pressure of running
 * N copies — using algorithms in the spirit of each benchmark's
 * domain (compression, place-and-route, combinatorial search, ...).
 *
 * Every kernel is deterministic, returns a checksum (validated across
 * variants by the engine's exit-status comparison in tests), and emits
 * one virtual-time syscall per outer iteration to mirror SPEC's low
 * but non-zero syscall rate.
 */

#ifndef VARAN_APPS_CPU_KERNELS_H
#define VARAN_APPS_CPU_KERNELS_H

#include <cstdint>
#include <vector>

namespace varan::apps::cpu {

struct Kernel {
    const char *name;                      ///< SPEC-style label
    std::uint64_t (*run)(std::uint32_t);   ///< scale -> checksum
};

/** Twelve kernels mirroring the CPU2000 integer suite (Figure 7). */
const std::vector<Kernel> &cpu2000Suite();

/** Twelve kernels mirroring the CPU2006 integer suite (Figure 8). */
const std::vector<Kernel> &cpu2006Suite();

} // namespace varan::apps::cpu

#endif // VARAN_APPS_CPU_KERNELS_H
