/**
 * @file
 * vcache: the Memcached archetype — a multi-threaded object cache
 * speaking the memcached text protocol (set/get/delete/version).
 *
 * Threading model mirrors memcached 1.4: one acceptor plus N worker
 * threads, each worker running its own epoll loop. Connection handoff
 * from acceptor to worker travels through a pipe *as a system call*,
 * so under N-version execution the handoff order itself is part of the
 * replicated event stream and every variant assigns the same
 * connection to the same worker tuple (section 3.3.3).
 */

#ifndef VARAN_APPS_VCACHE_H
#define VARAN_APPS_VCACHE_H

#include <cstdint>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

namespace varan::apps::vcache {

/** Cache entry. */
struct Entry {
    std::uint32_t flags = 0;
    std::string data;
};

/** Sharded cache; shard count fixed so key->shard is deterministic. */
class Cache
{
  public:
    explicit Cache(std::size_t shards = 8);
    ~Cache();

    bool set(const std::string &key, std::uint32_t flags,
             std::string data);
    bool get(const std::string &key, Entry *out) const;
    bool erase(const std::string &key);
    std::size_t size() const;

  private:
    struct Shard;
    std::size_t shardOf(const std::string &key) const;

    std::vector<std::unique_ptr<Shard>> shards_;
};

struct Options {
    std::string endpoint = "varan-vcache";
    int workers = 2; ///< worker threads (tuples 1..workers)
};

/** Run until a client sends "shutdown". */
int serve(const Options &options);

} // namespace varan::apps::vcache

#endif // VARAN_APPS_VCACHE_H
