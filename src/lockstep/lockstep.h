/**
 * @file
 * The prior-work baseline: a centralised, lockstep NVX monitor with
 * ptrace's cost structure (sections 2.1-2.2, Table 2).
 *
 * Mx, Orchestra and Tachyon all stop every variant at every system
 * call, switch to a central monitor process, copy buffers in and out,
 * and only proceed once all variants reached the same call. This
 * module reproduces that architecture faithfully over UNIX sockets:
 *
 *   variant -> monitor : request (context switch #1)
 *   monitor -> executor: go
 *   executor -> monitor: result + buffers (+fds)
 *   monitor -> variants: result + buffers   (context switch #2..N)
 *
 * Every call — including process-local ones ptrace cannot help but
 * trap — pays the round trip, and the lockstep barrier makes the whole
 * group run at the speed of its slowest member. Both properties are
 * exactly what VARAN's event-streaming design eliminates.
 */

#ifndef VARAN_LOCKSTEP_LOCKSTEP_H
#define VARAN_LOCKSTEP_LOCKSTEP_H

#include <functional>
#include <vector>

#include "common/fd.h"
#include "syscalls/classify.h"
#include "syscalls/sys.h"

namespace varan::lockstep {

using VariantFn = std::function<int()>;

struct VariantResult {
    int variant = -1;
    bool crashed = false;
    int status = 0;
};

/** Engine options. */
struct Options {
    std::uint64_t progress_timeout_ns = 30000000000ULL;
    /** Kill followers whose syscall number diverges (lockstep rule). */
    bool strict_lockstep = true;
};

/**
 * Runs N variants in classic lockstep under a centralised monitor.
 * Supports single-threaded, single-process variants (which matches
 * every benchmark the prior systems were evaluated on).
 */
class LockstepEngine
{
  public:
    explicit LockstepEngine(Options options = Options{});

    std::vector<VariantResult> run(std::vector<VariantFn> variants);

    /** Syscalls that went through the monitor (after run()). */
    std::uint64_t monitoredCalls() const { return monitored_calls_; }

  private:
    Options options_;
    std::uint64_t monitored_calls_ = 0;
};

/**
 * Measure the real thing: cycles per system call for a child running
 * under PTRACE_SYSCALL supervision vs. running natively. Used by the
 * Table 2 bench to report the genuine ptrace tax on this machine.
 */
struct PtraceCost {
    double native_cycles_per_call = 0;
    double traced_cycles_per_call = 0;
    bool ptrace_available = false;
};

PtraceCost measurePtraceCost(std::size_t iterations);

} // namespace varan::lockstep

#endif // VARAN_LOCKSTEP_LOCKSTEP_H
