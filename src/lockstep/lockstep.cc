#include "lockstep/lockstep.h"

#include <cstring>
#include <poll.h>
#include <sys/ptrace.h>
#include <sys/socket.h>
#include <sys/user.h>
#include <sys/wait.h>
#include <unistd.h>

#include "common/clock.h"
#include "common/fdpass.h"
#include "common/logging.h"
#include "syscalls/raw.h"

namespace varan::lockstep {

namespace {

constexpr std::size_t kMaxInline = 8192; ///< buffer bytes per message

enum class MsgKind : std::uint32_t {
    Request = 1,  ///< variant -> monitor: about to make a syscall
    GoLocal,      ///< monitor -> variant: execute it yourself
    GoExecute,    ///< monitor -> executor: run it for the group
    ExecDone,     ///< executor -> monitor: result + out buffer
    Result,       ///< monitor -> variant: final result + out buffer
    Killed,       ///< monitor -> variant: lockstep divergence
};

struct MsgHeader {
    MsgKind kind;
    std::int32_t variant;
    std::int64_t nr;
    std::int64_t result;
    std::uint64_t args[6];
    std::uint32_t payload;   ///< bytes following the header
    std::uint32_t sends_fd;  ///< an SCM_RIGHTS descriptor accompanies
};

Status
sendMsg(int fd, const MsgHeader &header, const void *payload,
        int pass_fd = -1)
{
    struct iovec iov[2];
    iov[0].iov_base = const_cast<MsgHeader *>(&header);
    iov[0].iov_len = sizeof(header);
    iov[1].iov_base = const_cast<void *>(payload);
    iov[1].iov_len = header.payload;

    struct msghdr msg = {};
    msg.msg_iov = iov;
    msg.msg_iovlen = header.payload > 0 ? 2 : 1;

    alignas(struct cmsghdr) char cbuf[CMSG_SPACE(sizeof(int))] = {};
    if (pass_fd >= 0) {
        msg.msg_control = cbuf;
        msg.msg_controllen = sizeof(cbuf);
        struct cmsghdr *cm = CMSG_FIRSTHDR(&msg);
        cm->cmsg_level = SOL_SOCKET;
        cm->cmsg_type = SCM_RIGHTS;
        cm->cmsg_len = CMSG_LEN(sizeof(int));
        std::memcpy(CMSG_DATA(cm), &pass_fd, sizeof(int));
    }
    for (;;) {
        ssize_t n = ::sendmsg(fd, &msg, MSG_NOSIGNAL);
        if (n >= 0)
            return Status::ok();
        if (errno != EINTR)
            return Status::fromErrno();
    }
}

struct ReceivedMsg {
    MsgHeader header;
    std::vector<std::uint8_t> payload;
    Fd fd;
};

Result<ReceivedMsg>
recvMsg(int fd)
{
    ReceivedMsg out;
    std::uint8_t buf[sizeof(MsgHeader) + kMaxInline];
    struct iovec iov = {buf, sizeof(buf)};
    struct msghdr msg = {};
    msg.msg_iov = &iov;
    msg.msg_iovlen = 1;
    alignas(struct cmsghdr) char cbuf[CMSG_SPACE(sizeof(int))] = {};
    msg.msg_control = cbuf;
    msg.msg_controllen = sizeof(cbuf);

    ssize_t n;
    for (;;) {
        n = ::recvmsg(fd, &msg, 0);
        if (n >= 0)
            break;
        if (errno != EINTR)
            return errnoResult<ReceivedMsg>();
    }
    if (n == 0)
        return Result<ReceivedMsg>(Errno{EPIPE});
    if (static_cast<std::size_t>(n) < sizeof(MsgHeader))
        return Result<ReceivedMsg>(Errno{EPROTO});
    std::memcpy(&out.header, buf, sizeof(MsgHeader));
    out.payload.assign(buf + sizeof(MsgHeader), buf + n);
    struct cmsghdr *cm = CMSG_FIRSTHDR(&msg);
    if (cm && cm->cmsg_type == SCM_RIGHTS) {
        int got = -1;
        std::memcpy(&got, CMSG_DATA(cm), sizeof(int));
        out.fd = Fd(got);
    }
    return out;
}

/** Leader-side length of one OUT chunk (mirrors the core engine). */
std::uint32_t
outLen(const sys::OutBufferSpec &spec, const std::uint64_t args[6],
       long result)
{
    if (spec.arg < 0 || args[spec.arg] == 0)
        return 0;
    switch (spec.len_from) {
      case sys::LenFrom::Result:
        return result > 0 ? static_cast<std::uint32_t>(result) : 0;
      case sys::LenFrom::ResultTimesSize:
        return result > 0 ? static_cast<std::uint32_t>(result) * spec.fixed
                          : 0;
      case sys::LenFrom::Arg:
        return static_cast<std::uint32_t>(args[spec.len_arg]) * spec.fixed;
      case sys::LenFrom::Fixed:
        return result >= 0 ? spec.fixed : 0;
      case sys::LenFrom::DerefArg: {
        if (args[spec.len_arg] == 0 || result < 0)
            return 0;
        std::uint32_t n;
        std::memcpy(&n, reinterpret_cast<const void *>(args[spec.len_arg]),
                    sizeof(n));
        return n;
      }
      default:
        return 0;
    }
}

/** Dispatcher installed in each lockstep variant. */
class LockstepClient : public sys::Dispatcher
{
  public:
    LockstepClient(int socket, int variant)
        : socket_(socket), variant_(variant)
    {
    }

    long
    dispatch(long nr, const std::uint64_t args[6]) override
    {
        const sys::SyscallInfo &info = sys::syscallInfo(nr);

        // Request: the "trap into the monitor".
        MsgHeader req = {};
        req.kind = MsgKind::Request;
        req.variant = variant_;
        req.nr = nr;
        for (int i = 0; i < 6; ++i)
            req.args[i] = args[i];
        if (!sendMsg(socket_, req, nullptr).isOk())
            ::_exit(70);

        auto reply = recvMsg(socket_);
        if (!reply.ok())
            ::_exit(71);
        MsgHeader &h = reply.value().header;

        switch (h.kind) {
          case MsgKind::GoLocal:
            return sys::rawSyscall(nr, args[0], args[1], args[2], args[3],
                                   args[4], args[5]);
          case MsgKind::GoExecute: {
            long result = sys::rawSyscall(nr, args[0], args[1], args[2],
                                          args[3], args[4], args[5]);
            MsgHeader done = {};
            done.kind = MsgKind::ExecDone;
            done.variant = variant_;
            done.nr = nr;
            done.result = result;
            const void *payload = nullptr;
            std::uint32_t len = outLen(info.out[0], args, result);
            if (len > kMaxInline)
                len = 0; // cap for the baseline; fine for benches
            if (len > 0) {
                payload = reinterpret_cast<const void *>(
                    args[info.out[0].arg]);
                done.payload = len;
            }
            int pass = -1;
            if (info.cls == sys::SyscallClass::FdCreating && result >= 0) {
                pass = static_cast<int>(result);
                done.sends_fd = 1;
            }
            sendMsg(socket_, done, payload, pass);
            // The executor already holds the authoritative result; the
            // monitor broadcasts Result only to the other variants, so
            // skipping the echo saves one context switch per executed
            // call (the same sync-amortization idea as ring batching).
            return result;
          }
          case MsgKind::Result: {
            // Copy OUT data delivered by the monitor.
            if (h.payload > 0 && info.out[0].arg >= 0 &&
                args[info.out[0].arg] != 0) {
                std::memcpy(reinterpret_cast<void *>(args[info.out[0].arg]),
                            reply.value().payload.data(), h.payload);
                if (info.out[0].len_from == sys::LenFrom::DerefArg &&
                    args[info.out[0].len_arg] != 0) {
                    std::uint32_t n = h.payload;
                    std::memcpy(
                        reinterpret_cast<void *>(args[info.out[0].len_arg]),
                        &n, sizeof(n));
                }
            }
            if (reply.value().fd.valid() && h.result >= 0) {
                int target = static_cast<int>(h.result);
                if (reply.value().fd.get() != target)
                    sys::rawSyscall(SYS_dup2, reply.value().fd.get(),
                                    target);
                else
                    reply.value().fd.release();
            }
            if (nr == SYS_close)
                sys::rawSyscall(SYS_close, args[0]);
            return h.result;
          }
          case MsgKind::Killed:
          default:
            ::_exit(73);
        }
    }

  private:
    int socket_;
    int variant_;
};

} // namespace

LockstepEngine::LockstepEngine(Options options) : options_(options) {}

std::vector<VariantResult>
LockstepEngine::run(std::vector<VariantFn> variants)
{
    const std::size_t n = variants.size();
    VARAN_CHECK(n >= 1 && n <= 16);

    std::vector<SocketPair> pairs;
    pairs.reserve(n);
    for (std::size_t v = 0; v < n; ++v) {
        auto pair = SocketPair::create(SOCK_SEQPACKET);
        VARAN_CHECK(pair.ok());
        pairs.push_back(std::move(pair.value()));
    }

    std::vector<pid_t> pids(n, -1);
    for (std::size_t v = 0; v < n; ++v) {
        pid_t pid = ::fork();
        VARAN_CHECK(pid >= 0);
        if (pid == 0) {
            // Own process group: a variant outside the single-process
            // contract may fork helpers that share its socket; group
            // kill is the only way the monitor can reap the subtree.
            ::setpgid(0, 0);
            for (std::size_t o = 0; o < n; ++o) {
                pairs[o].end(0).reset();
                if (o != v)
                    pairs[o].end(1).reset();
            }
            LockstepClient client(pairs[v].end(1).get(),
                                  static_cast<int>(v));
            sys::setDispatcher(&client);
            int status = variants[v]();
            sys::setDispatcher(nullptr);
            ::_exit(status & 0xff);
        }
        pids[v] = pid;
        ::setpgid(pid, pid); // races benignly with the child's setpgid
        pairs[v].end(1).reset();
    }

    // ---- the centralised monitor loop ----
    std::vector<bool> alive(n, true);
    std::vector<bool> pending(n, false);
    std::vector<ReceivedMsg> requests(n);
    std::size_t live_count = n;

    auto barrier_full = [&]() {
        for (std::size_t v = 0; v < n; ++v) {
            if (alive[v] && !pending[v])
                return false;
        }
        return true;
    };

    const std::uint64_t deadline =
        monotonicNs() + options_.progress_timeout_ns;
    while (live_count > 0 && monotonicNs() < deadline) {
        std::vector<struct pollfd> pfds;
        std::vector<std::size_t> owner;
        for (std::size_t v = 0; v < n; ++v) {
            if (alive[v] && !pending[v]) {
                pfds.push_back({pairs[v].end(0).get(), POLLIN, 0});
                owner.push_back(v);
            }
        }
        if (!pfds.empty()) {
            int ready = ::poll(pfds.data(), pfds.size(), 100);
            if (ready < 0 && errno != EINTR)
                break;
            for (std::size_t i = 0; i < pfds.size(); ++i) {
                if (!(pfds[i].revents & (POLLIN | POLLHUP)))
                    continue;
                std::size_t v = owner[i];
                auto msg = recvMsg(pairs[v].end(0).get());
                if (!msg.ok()) {
                    alive[v] = false;
                    --live_count;
                    continue;
                }
                requests[v] = std::move(msg.value());
                pending[v] = true;
            }
        }
        if (live_count == 0 || !barrier_full())
            continue;

        // All live variants are stopped at a syscall: the lockstep
        // point. Check they agree.
        long nr = -1;
        bool diverged = false;
        for (std::size_t v = 0; v < n; ++v) {
            if (!alive[v])
                continue;
            if (nr == -1)
                nr = requests[v].header.nr;
            else if (requests[v].header.nr != nr)
                diverged = true;
        }
        if (diverged && options_.strict_lockstep) {
            // Classic behaviour: terminate disagreeing followers (the
            // executor's stream wins).
            long canon = -1;
            for (std::size_t v = 0; v < n; ++v) {
                if (alive[v]) {
                    canon = requests[v].header.nr;
                    break;
                }
            }
            for (std::size_t v = 0; v < n; ++v) {
                if (!alive[v] || requests[v].header.nr == canon)
                    continue;
                MsgHeader kill = {};
                kill.kind = MsgKind::Killed;
                sendMsg(pairs[v].end(0).get(), kill, nullptr);
                pending[v] = false;
                alive[v] = false;
                --live_count;
            }
        }

        const sys::SyscallInfo &info = sys::syscallInfo(nr);
        ++monitored_calls_;

        if (info.cls == sys::SyscallClass::Local ||
            info.cls == sys::SyscallClass::Unhandled ||
            info.cls == sys::SyscallClass::Fork ||
            info.cls == sys::SyscallClass::Exit) {
            for (std::size_t v = 0; v < n; ++v) {
                if (!alive[v] || !pending[v])
                    continue;
                MsgHeader go = {};
                go.kind = MsgKind::GoLocal;
                sendMsg(pairs[v].end(0).get(), go, nullptr);
                pending[v] = false;
            }
            continue;
        }

        // Pick the lowest live variant as executor.
        std::size_t executor = 0;
        while (executor < n && !alive[executor])
            ++executor;
        MsgHeader go = {};
        go.kind = MsgKind::GoExecute;
        sendMsg(pairs[executor].end(0).get(), go, nullptr);
        // Bounded wait for the execution result: a variant outside the
        // engine's contract (one that forked helpers sharing its
        // socket, or a server wedged in a blocking call) might never
        // answer, and an unbounded recvMsg here would hang the whole
        // bench past the engine's own progress deadline. Error events
        // (POLLERR/POLLNVAL) fall through to recvMsg, which fails and
        // retires just this variant — the run continues.
        struct pollfd epfd = {pairs[executor].end(0).get(), POLLIN, 0};
        while (epfd.revents == 0 && monotonicNs() < deadline) {
            int r = ::poll(&epfd, 1, 100);
            if (r < 0 && errno != EINTR)
                break;
        }
        if (epfd.revents == 0)
            break; // deadline expired: fall through to the kill path
        auto done = recvMsg(pairs[executor].end(0).get());
        if (!done.ok()) {
            alive[executor] = false;
            --live_count;
            pending[executor] = false;
            continue;
        }
        // The executor resumed itself on ExecDone; only the remaining
        // variants need the Result broadcast.
        pending[executor] = false;

        MsgHeader result = {};
        result.kind = MsgKind::Result;
        result.nr = nr;
        result.result = done.value().header.result;
        result.payload = done.value().header.payload;
        for (std::size_t v = 0; v < n; ++v) {
            if (!alive[v] || !pending[v])
                continue;
            int pass = -1;
            if (done.value().fd.valid())
                pass = done.value().fd.get();
            sendMsg(pairs[v].end(0).get(), result,
                    done.value().payload.data(), pass);
            pending[v] = false;
        }
    }

    // Kill every variant process group before reaping, unconditionally.
    // A variant the monitor considers dead (socket error) may still be
    // running — e.g. it forked helpers that share its socket and broke
    // the protocol — and a variant parked in recvmsg never exits on its
    // own; either would wedge the blocking waitpid below forever.
    for (std::size_t v = 0; v < n; ++v) {
        if (pids[v] > 0)
            ::kill(-pids[v], SIGKILL);
    }

    std::vector<VariantResult> results(n);
    for (std::size_t v = 0; v < n; ++v) {
        results[v].variant = static_cast<int>(v);
        int status = 0;
        if (::waitpid(pids[v], &status, 0) == pids[v]) {
            results[v].crashed = WIFSIGNALED(status);
            results[v].status = WIFSIGNALED(status)
                                    ? 128 + WTERMSIG(status)
                                    : WEXITSTATUS(status);
        }
    }
    return results;
}

PtraceCost
measurePtraceCost(std::size_t iterations)
{
    PtraceCost cost;

    // Native: tight getpid loop.
    {
        std::uint64_t t0 = rdtsc();
        for (std::size_t i = 0; i < iterations; ++i)
            sys::rawSyscall(SYS_getpid);
        cost.native_cycles_per_call =
            double(rdtsc() - t0) / double(iterations);
    }

    // Traced: the same loop under PTRACE_SYSCALL supervision.
    int fds[2];
    if (::pipe(fds) < 0)
        return cost;
    pid_t child = ::fork();
    if (child < 0)
        return cost;
    if (child == 0) {
        ::close(fds[0]);
        ::ptrace(PTRACE_TRACEME, 0, nullptr, nullptr);
        ::raise(SIGSTOP);
        std::uint64_t t0 = rdtsc();
        for (std::size_t i = 0; i < iterations; ++i)
            sys::rawSyscall(SYS_getpid);
        std::uint64_t dt = rdtsc() - t0;
        [[maybe_unused]] ssize_t n = ::write(fds[1], &dt, sizeof(dt));
        ::_exit(0);
    }
    ::close(fds[1]);
    int status = 0;
    ::waitpid(child, &status, 0); // SIGSTOP
    bool ok = true;
    if (::ptrace(PTRACE_SYSCALL, child, nullptr, nullptr) < 0)
        ok = false;
    while (ok) {
        if (::waitpid(child, &status, 0) < 0)
            break;
        if (WIFEXITED(status) || WIFSIGNALED(status))
            break;
        if (::ptrace(PTRACE_SYSCALL, child, nullptr, nullptr) < 0)
            break;
    }
    std::uint64_t dt = 0;
    if (ok && ::read(fds[0], &dt, sizeof(dt)) == sizeof(dt)) {
        cost.traced_cycles_per_call = double(dt) / double(iterations);
        cost.ptrace_available = true;
    }
    ::close(fds[0]);
    ::waitpid(child, &status, WNOHANG);
    return cost;
}

} // namespace varan::lockstep
