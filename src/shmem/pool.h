/**
 * @file
 * Shared-memory pool allocator (paper section 3.3.4).
 *
 * The allocator has buckets for different allocation sizes; each bucket
 * holds a free list of fixed-size chunks and grows by carving segments
 * out of the pool area, dividing each new segment into chunks that are
 * pushed onto the free list. A per-bucket futex lock guards allocation
 * and deallocation, matching the paper's locking discipline.
 *
 * Payload blocks carry a reference count so the leader can publish one
 * buffer to N followers and have the last consumer release it.
 *
 * On top of the flat PoolAllocator, ShardedPool carves the pool area
 * into per-tuple arenas with independent locks plus a shared
 * global-fallback arena: each thread tuple allocates from its own
 * arena, so leader threads of different tuples never contend, and a
 * tuple whose arena runs dry spills to the global arena instead of
 * failing. Every chunk records its owning arena, so release() works on
 * any payload offset no matter which arena produced it.
 */

#ifndef VARAN_SHMEM_POOL_H
#define VARAN_SHMEM_POOL_H

#include <array>
#include <atomic>
#include <cstdint>

#include "shmem/futex_lock.h"
#include "shmem/region.h"

namespace varan::shmem {

/** Allocation size classes; chunk payloads range 64 B .. 1 MiB. */
inline constexpr std::size_t kNumBuckets = 15;
inline constexpr std::size_t kMinChunkPayload = 64;

/** Upper bound on per-tuple arenas (mirrors core::kMaxTuples). */
inline constexpr std::uint32_t kMaxPoolShards = 16;

/** Per-bucket bookkeeping, resident in shared memory. */
struct alignas(kCacheLineSize) Bucket {
    FutexLock lock;
    Offset free_head;           ///< first free chunk, 0 when empty
    std::uint32_t chunk_size;   ///< payload bytes per chunk
    std::uint32_t chunks_per_segment;
    std::atomic<std::uint64_t> allocated;  ///< live allocations (stats)
    std::atomic<std::uint64_t> total_chunks; ///< chunks ever carved
};

/** Header preceding every chunk payload in memory. */
struct ChunkHeader {
    std::uint32_t bucket;                 ///< owning bucket index
    std::atomic<std::uint32_t> refcount;  ///< live references
    Offset next_free;                     ///< intrusive free-list link
    std::uint32_t requested;              ///< bytes asked for (debug/stats)
    std::uint32_t magic;                  ///< corruption canary
    Offset owner;                         ///< PoolHeader offset of the
                                          ///< arena that carved this chunk
};

static constexpr std::uint32_t kChunkMagic = 0x564e5658; // "VNVX"

/** Cache-line-rounded space reserved before every chunk payload. */
inline constexpr std::size_t kChunkHeaderReserved =
    (sizeof(ChunkHeader) + kCacheLineSize - 1) & ~(kCacheLineSize - 1);

/**
 * Point-in-time snapshot of one arena's pressure. Plain POD so it can
 * travel in wire frames (the remote-follower handshake reports the
 * leader node's pool state) and in the coordinator status API.
 */
struct PoolArenaStats {
    std::uint64_t bytes_total;   ///< carveable bytes the arena owns
    std::uint64_t bytes_carved;  ///< carve-cursor progress into them
    std::uint64_t live_chunks;   ///< allocations currently outstanding
    std::uint64_t free_chunks;   ///< carved chunks sitting on free lists
};

/** Snapshot across every arena of a ShardedPool. */
struct PoolStats {
    std::uint32_t num_shards;
    std::uint32_t reserved;
    std::uint64_t spills;        ///< allocations the fallback served
    PoolArenaStats global;       ///< fallback arena
    PoolArenaStats shard[kMaxPoolShards];
};

/** Pool control area, resident at a fixed offset in the Region. */
struct PoolHeader {
    Offset pool_begin;   ///< first byte the pool may carve
    Offset pool_end;     ///< one past the last byte
    std::atomic<Offset> bump; ///< segment carve cursor
    std::array<Bucket, kNumBuckets> buckets;
};

/**
 * Handle over a PoolHeader living inside a Region.
 *
 * The handle itself is a cheap value object private to each process; all
 * shared state sits behind the Region mapping, so every process
 * constructs its own PoolAllocator over the same offsets.
 */
class PoolAllocator
{
  public:
    PoolAllocator() = default;
    PoolAllocator(const Region *region, Offset header_off);

    /**
     * One-time initialisation by the coordinator.
     *
     * @param region the shared region.
     * @param header_off offset of a PoolHeader-sized carve.
     * @param pool_begin first pool byte, @param pool_end last + 1.
     */
    static PoolAllocator initialize(const Region *region, Offset header_off,
                                    Offset pool_begin, Offset pool_end);

    /**
     * Allocate @p size bytes with an initial refcount of @p refs.
     * @return offset of the payload (not the header), or 0 on exhaustion.
     */
    Offset allocate(std::size_t size, std::uint32_t refs = 1);

    /** Increment the payload's reference count. */
    void addRef(Offset payload, std::uint32_t n = 1);

    /** Drop one reference; frees the chunk when it reaches zero. */
    void release(Offset payload);

    /** Payload pointer helper. */
    void *
    pointer(Offset payload, std::size_t len) const
    {
        return region_->bytesAt(payload, len);
    }

    /** Current refcount (for tests). */
    std::uint32_t refcount(Offset payload) const;

    /** Number of live allocations across all buckets. */
    std::uint64_t liveAllocations() const;

    /** Bytes of pool space not yet carved into segments. */
    std::uint64_t bytesUncarved() const;

    /** Size class (chunk payload bytes) used for a request. */
    static std::size_t chunkSizeFor(std::size_t size);

    /** Pressure snapshot: carve cursor, live and free chunk counts. */
    PoolArenaStats stats() const;

    /** Offset of this allocator's PoolHeader (arena identity). */
    Offset headerOffset() const { return header_off_; }

  private:
    Bucket &bucket(std::size_t idx) const;
    ChunkHeader *header(Offset payload) const;
    bool refillBucket(std::size_t idx);

    const Region *region_ = nullptr;
    Offset header_off_ = 0;
};

/** Control area of a sharded pool, resident in shared memory. */
struct ShardedPoolHeader {
    std::uint32_t num_shards;
    std::array<Offset, kMaxPoolShards> shard_headers; ///< per-tuple arenas
    Offset global_header;                             ///< fallback arena
    std::atomic<std::uint64_t> spills; ///< allocations served by fallback
};

/**
 * Per-tuple arena sharding over the payload pool.
 *
 * initialize() splits [pool_begin, pool_end) into num_shards equal
 * arenas (half the space) plus one global-fallback arena (the other
 * half), each a full PoolAllocator with its own bucket locks and carve
 * cursor. allocate() serves from the caller's shard and spills to the
 * fallback when the shard is exhausted or the shard id is out of range
 * (external publishers such as record-replay taps).
 *
 * release()/addRef()/refcount() resolve the owning arena through the
 * chunk header, so consumers need no shard knowledge — a payload offset
 * is self-describing regardless of which arena produced it.
 *
 * Capacity note: arenas partition the pool, so one tuple can reach at
 * most its own arena plus the whole fallback (roughly half the pool +
 * 1/(2*num_shards)) — less than the flat allocator offered a single
 * tuple. Workloads with large live payload sets should size the region
 * (EngineConfig::shm_bytes) with that in mind.
 */
class ShardedPool
{
  public:
    ShardedPool() = default;
    ShardedPool(const Region *region, Offset header_off);

    /** One-time initialisation by the coordinator (pre-fork). */
    static ShardedPool initialize(const Region *region, Offset header_off,
                                  Offset pool_begin, Offset pool_end,
                                  std::uint32_t num_shards);

    bool valid() const { return region_ != nullptr; }
    std::uint32_t numShards() const;

    /**
     * Allocate @p size bytes from shard @p shard's arena, spilling to
     * the global arena when the shard is dry. @p spilled, when given,
     * reports whether the fallback served the request.
     * @return payload offset, or 0 when even the fallback is exhausted.
     */
    Offset allocate(std::uint32_t shard, std::size_t size,
                    std::uint32_t refs = 1, bool *spilled = nullptr);

    /** Increment the payload's reference count (any arena). */
    void addRef(Offset payload, std::uint32_t n = 1);

    /** Drop one reference; frees into the owning arena at zero. */
    void release(Offset payload);

    void *
    pointer(Offset payload, std::size_t len) const
    {
        return region_->bytesAt(payload, len);
    }

    std::uint32_t refcount(Offset payload) const;

    /** Live allocations summed over every arena. */
    std::uint64_t liveAllocations() const;

    /** Allocations the global fallback served (cross-shard spills). */
    std::uint64_t spills() const;

    /** Per-arena pressure snapshot across every shard + the fallback. */
    PoolStats stats() const;

    /** Flat allocator over one shard's arena (tests, stats). */
    PoolAllocator shardAllocator(std::uint32_t shard) const;

    /** Flat allocator over the global-fallback arena. */
    PoolAllocator globalAllocator() const;

  private:
    ShardedPoolHeader *header() const;
    ChunkHeader *chunk(Offset payload) const;

    const Region *region_ = nullptr;
    Offset header_off_ = 0;
};

} // namespace varan::shmem

#endif // VARAN_SHMEM_POOL_H
