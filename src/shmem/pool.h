/**
 * @file
 * Shared-memory pool allocator (paper section 3.3.4).
 *
 * The allocator has buckets for different allocation sizes; each bucket
 * holds a free list of fixed-size chunks and grows by carving segments
 * out of the pool area, dividing each new segment into chunks that are
 * pushed onto the free list. A per-bucket futex lock guards allocation
 * and deallocation, matching the paper's locking discipline.
 *
 * Payload blocks carry a reference count so the leader can publish one
 * buffer to N followers and have the last consumer release it.
 */

#ifndef VARAN_SHMEM_POOL_H
#define VARAN_SHMEM_POOL_H

#include <array>
#include <atomic>
#include <cstdint>

#include "shmem/futex_lock.h"
#include "shmem/region.h"

namespace varan::shmem {

/** Allocation size classes; chunk payloads range 64 B .. 1 MiB. */
inline constexpr std::size_t kNumBuckets = 15;
inline constexpr std::size_t kMinChunkPayload = 64;

/** Per-bucket bookkeeping, resident in shared memory. */
struct alignas(kCacheLineSize) Bucket {
    FutexLock lock;
    Offset free_head;           ///< first free chunk, 0 when empty
    std::uint32_t chunk_size;   ///< payload bytes per chunk
    std::uint32_t chunks_per_segment;
    std::atomic<std::uint64_t> allocated;  ///< live allocations (stats)
    std::atomic<std::uint64_t> total_chunks; ///< chunks ever carved
};

/** Header preceding every chunk payload in memory. */
struct ChunkHeader {
    std::uint32_t bucket;                 ///< owning bucket index
    std::atomic<std::uint32_t> refcount;  ///< live references
    Offset next_free;                     ///< intrusive free-list link
    std::uint32_t requested;              ///< bytes asked for (debug/stats)
    std::uint32_t magic;                  ///< corruption canary
};

static constexpr std::uint32_t kChunkMagic = 0x564e5658; // "VNVX"

/** Pool control area, resident at a fixed offset in the Region. */
struct PoolHeader {
    Offset pool_begin;   ///< first byte the pool may carve
    Offset pool_end;     ///< one past the last byte
    std::atomic<Offset> bump; ///< segment carve cursor
    std::array<Bucket, kNumBuckets> buckets;
};

/**
 * Handle over a PoolHeader living inside a Region.
 *
 * The handle itself is a cheap value object private to each process; all
 * shared state sits behind the Region mapping, so every process
 * constructs its own PoolAllocator over the same offsets.
 */
class PoolAllocator
{
  public:
    PoolAllocator() = default;
    PoolAllocator(const Region *region, Offset header_off);

    /**
     * One-time initialisation by the coordinator.
     *
     * @param region the shared region.
     * @param header_off offset of a PoolHeader-sized carve.
     * @param pool_begin first pool byte, @param pool_end last + 1.
     */
    static PoolAllocator initialize(const Region *region, Offset header_off,
                                    Offset pool_begin, Offset pool_end);

    /**
     * Allocate @p size bytes with an initial refcount of @p refs.
     * @return offset of the payload (not the header), or 0 on exhaustion.
     */
    Offset allocate(std::size_t size, std::uint32_t refs = 1);

    /** Increment the payload's reference count. */
    void addRef(Offset payload, std::uint32_t n = 1);

    /** Drop one reference; frees the chunk when it reaches zero. */
    void release(Offset payload);

    /** Payload pointer helper. */
    void *
    pointer(Offset payload, std::size_t len) const
    {
        return region_->bytesAt(payload, len);
    }

    /** Current refcount (for tests). */
    std::uint32_t refcount(Offset payload) const;

    /** Number of live allocations across all buckets. */
    std::uint64_t liveAllocations() const;

    /** Bytes of pool space not yet carved into segments. */
    std::uint64_t bytesUncarved() const;

    /** Size class (chunk payload bytes) used for a request. */
    static std::size_t chunkSizeFor(std::size_t size);

  private:
    Bucket &bucket(std::size_t idx) const;
    ChunkHeader *header(Offset payload) const;
    bool refillBucket(std::size_t idx);

    const Region *region_ = nullptr;
    Offset header_off_ = 0;
};

} // namespace varan::shmem

#endif // VARAN_SHMEM_POOL_H
