#include "shmem/futex_lock.h"

namespace varan::shmem {

void
FutexLock::lockSlow()
{
    // Announce contention, then sleep until the holder hands off.
    std::uint32_t c = state_.exchange(2, std::memory_order_acquire);
    while (c != 0) {
        futexWait(&state_, 2, 0);
        c = state_.exchange(2, std::memory_order_acquire);
    }
}

} // namespace varan::shmem
