#include "shmem/pool.h"

#include <new>

namespace varan::shmem {

namespace {

constexpr std::size_t kHeaderSize = kChunkHeaderReserved;

/** Bucket index for a payload size: 64 << idx bytes. */
std::size_t
bucketIndexFor(std::size_t size)
{
    std::size_t idx = 0;
    std::size_t cap = kMinChunkPayload;
    while (cap < size) {
        cap <<= 1;
        ++idx;
    }
    return idx;
}

/** How many chunks each fresh segment of a bucket contains. */
std::uint32_t
segmentChunkCount(std::size_t chunk_payload)
{
    // Small chunks come 64 to a segment; huge ones one at a time.
    if (chunk_payload <= 4096)
        return 64;
    if (chunk_payload <= 65536)
        return 8;
    return 1;
}

} // namespace

PoolAllocator::PoolAllocator(const Region *region, Offset header_off)
    : region_(region), header_off_(header_off)
{
}

PoolAllocator
PoolAllocator::initialize(const Region *region, Offset header_off,
                          Offset pool_begin, Offset pool_end)
{
    VARAN_CHECK(pool_begin < pool_end);
    auto *hdr = new (region->bytesAt(header_off, sizeof(PoolHeader)))
        PoolHeader();
    hdr->pool_begin = pool_begin;
    hdr->pool_end = pool_end;
    hdr->bump.store(pool_begin, std::memory_order_relaxed);
    std::size_t payload = kMinChunkPayload;
    for (std::size_t i = 0; i < kNumBuckets; ++i) {
        Bucket &b = hdr->buckets[i];
        b.free_head = 0;
        b.chunk_size = static_cast<std::uint32_t>(payload);
        b.chunks_per_segment = segmentChunkCount(payload);
        b.allocated.store(0, std::memory_order_relaxed);
        b.total_chunks.store(0, std::memory_order_relaxed);
        payload <<= 1;
    }
    return PoolAllocator(region, header_off);
}

Bucket &
PoolAllocator::bucket(std::size_t idx) const
{
    auto *hdr = region_->at<PoolHeader>(header_off_);
    VARAN_CHECK(idx < kNumBuckets);
    return hdr->buckets[idx];
}

ChunkHeader *
PoolAllocator::header(Offset payload) const
{
    auto *ch = region_->at<ChunkHeader>(payload - kHeaderSize);
    VARAN_CHECK(ch->magic == kChunkMagic);
    return ch;
}

std::size_t
PoolAllocator::chunkSizeFor(std::size_t size)
{
    return kMinChunkPayload << bucketIndexFor(size);
}

bool
PoolAllocator::refillBucket(std::size_t idx)
{
    auto *hdr = region_->at<PoolHeader>(header_off_);
    Bucket &b = bucket(idx);
    const std::size_t stride = kHeaderSize + b.chunk_size;
    const std::size_t seg_bytes = stride * b.chunks_per_segment;

    Offset seg = hdr->bump.fetch_add(seg_bytes, std::memory_order_relaxed);
    if (seg + seg_bytes > hdr->pool_end) {
        // Give the space back on a best-effort basis and fail.
        hdr->bump.fetch_sub(seg_bytes, std::memory_order_relaxed);
        return false;
    }

    // Thread the fresh chunks onto the free list (lock already held).
    for (std::uint32_t i = 0; i < b.chunks_per_segment; ++i) {
        Offset chunk_off = seg + i * stride;
        auto *ch = new (region_->bytesAt(chunk_off, sizeof(ChunkHeader)))
            ChunkHeader();
        ch->bucket = static_cast<std::uint32_t>(idx);
        ch->refcount.store(0, std::memory_order_relaxed);
        ch->magic = kChunkMagic;
        ch->owner = header_off_;
        ch->next_free = b.free_head;
        b.free_head = chunk_off + kHeaderSize;
    }
    b.total_chunks.fetch_add(b.chunks_per_segment,
                             std::memory_order_relaxed);
    return true;
}

Offset
PoolAllocator::allocate(std::size_t size, std::uint32_t refs)
{
    if (size == 0)
        size = 1;
    std::size_t idx = bucketIndexFor(size);
    if (idx >= kNumBuckets)
        return 0; // larger than the biggest size class
    Bucket &b = bucket(idx);

    FutexLockGuard guard(b.lock);
    if (b.free_head == 0 && !refillBucket(idx))
        return 0;
    Offset payload = b.free_head;
    ChunkHeader *ch = header(payload);
    b.free_head = ch->next_free;
    ch->next_free = 0;
    ch->requested = static_cast<std::uint32_t>(size);
    ch->refcount.store(refs, std::memory_order_release);
    b.allocated.fetch_add(1, std::memory_order_relaxed);
    return payload;
}

void
PoolAllocator::addRef(Offset payload, std::uint32_t n)
{
    header(payload)->refcount.fetch_add(n, std::memory_order_relaxed);
}

void
PoolAllocator::release(Offset payload)
{
    ChunkHeader *ch = header(payload);
    std::uint32_t prev = ch->refcount.fetch_sub(1,
                                                std::memory_order_acq_rel);
    VARAN_CHECK(prev > 0);
    if (prev != 1)
        return;
    Bucket &b = bucket(ch->bucket);
    FutexLockGuard guard(b.lock);
    ch->next_free = b.free_head;
    b.free_head = payload;
    b.allocated.fetch_sub(1, std::memory_order_relaxed);
}

std::uint32_t
PoolAllocator::refcount(Offset payload) const
{
    return header(payload)->refcount.load(std::memory_order_acquire);
}

std::uint64_t
PoolAllocator::liveAllocations() const
{
    std::uint64_t sum = 0;
    for (std::size_t i = 0; i < kNumBuckets; ++i)
        sum += bucket(i).allocated.load(std::memory_order_relaxed);
    return sum;
}

std::uint64_t
PoolAllocator::bytesUncarved() const
{
    auto *hdr = region_->at<PoolHeader>(header_off_);
    Offset bump = hdr->bump.load(std::memory_order_relaxed);
    return bump >= hdr->pool_end ? 0 : hdr->pool_end - bump;
}

PoolArenaStats
PoolAllocator::stats() const
{
    auto *hdr = region_->at<PoolHeader>(header_off_);
    PoolArenaStats out = {};
    out.bytes_total = hdr->pool_end - hdr->pool_begin;
    Offset bump = hdr->bump.load(std::memory_order_relaxed);
    if (bump > hdr->pool_end)
        bump = hdr->pool_end; // refill raced past the end and backed off
    out.bytes_carved = bump - hdr->pool_begin;
    for (std::size_t i = 0; i < kNumBuckets; ++i) {
        const Bucket &b = bucket(i);
        std::uint64_t total = b.total_chunks.load(std::memory_order_relaxed);
        std::uint64_t live = b.allocated.load(std::memory_order_relaxed);
        out.live_chunks += live;
        out.free_chunks += total > live ? total - live : 0;
    }
    return out;
}

// --- ShardedPool -------------------------------------------------------

ShardedPool::ShardedPool(const Region *region, Offset header_off)
    : region_(region), header_off_(header_off)
{
}

ShardedPoolHeader *
ShardedPool::header() const
{
    return region_->at<ShardedPoolHeader>(header_off_);
}

ChunkHeader *
ShardedPool::chunk(Offset payload) const
{
    auto *ch = region_->at<ChunkHeader>(payload - kHeaderSize);
    VARAN_CHECK(ch->magic == kChunkMagic);
    return ch;
}

ShardedPool
ShardedPool::initialize(const Region *region, Offset header_off,
                        Offset pool_begin, Offset pool_end,
                        std::uint32_t num_shards)
{
    VARAN_CHECK(num_shards >= 1 && num_shards <= kMaxPoolShards);
    auto *hdr = new (region->bytesAt(header_off, sizeof(ShardedPoolHeader)))
        ShardedPoolHeader();
    hdr->num_shards = num_shards;
    hdr->spills.store(0, std::memory_order_relaxed);

    // The arena PoolHeaders live at the front of the pool area, then the
    // carveable space splits half to the shards, half to the fallback.
    constexpr std::size_t kHdrStride =
        (sizeof(PoolHeader) + kCacheLineSize - 1) & ~(kCacheLineSize - 1);
    Offset cursor = (pool_begin + kCacheLineSize - 1) &
                    ~static_cast<Offset>(kCacheLineSize - 1);
    std::array<Offset, kMaxPoolShards + 1> headers = {};
    for (std::uint32_t s = 0; s <= num_shards; ++s) {
        headers[s] = cursor;
        cursor += kHdrStride;
    }

    VARAN_CHECK(cursor < pool_end);
    const Offset carveable = pool_end - cursor;
    const Offset shard_bytes =
        (carveable / 2 / num_shards) & ~static_cast<Offset>(kCacheLineSize - 1);
    VARAN_CHECK(shard_bytes >= kCacheLineSize);
    for (std::uint32_t s = 0; s < num_shards; ++s) {
        hdr->shard_headers[s] = headers[s];
        PoolAllocator::initialize(region, headers[s], cursor,
                                  cursor + shard_bytes);
        cursor += shard_bytes;
    }
    hdr->global_header = headers[num_shards];
    PoolAllocator::initialize(region, headers[num_shards], cursor, pool_end);
    return ShardedPool(region, header_off);
}

std::uint32_t
ShardedPool::numShards() const
{
    return header()->num_shards;
}

PoolAllocator
ShardedPool::shardAllocator(std::uint32_t shard) const
{
    ShardedPoolHeader *hdr = header();
    VARAN_CHECK(shard < hdr->num_shards);
    return PoolAllocator(region_, hdr->shard_headers[shard]);
}

PoolAllocator
ShardedPool::globalAllocator() const
{
    return PoolAllocator(region_, header()->global_header);
}

Offset
ShardedPool::allocate(std::uint32_t shard, std::size_t size,
                      std::uint32_t refs, bool *spilled)
{
    ShardedPoolHeader *hdr = header();
    if (spilled)
        *spilled = false;
    if (shard < hdr->num_shards) {
        Offset payload =
            PoolAllocator(region_, hdr->shard_headers[shard])
                .allocate(size, refs);
        if (payload != 0)
            return payload;
    }
    // Cross-shard fallback: the shared arena has its own locks, so a
    // spilling tuple contends only with other spillers, never with a
    // healthy tuple's arena.
    Offset payload =
        PoolAllocator(region_, hdr->global_header).allocate(size, refs);
    if (payload != 0) {
        hdr->spills.fetch_add(1, std::memory_order_relaxed);
        if (spilled)
            *spilled = true;
    }
    return payload;
}

void
ShardedPool::addRef(Offset payload, std::uint32_t n)
{
    chunk(payload)->refcount.fetch_add(n, std::memory_order_relaxed);
}

void
ShardedPool::release(Offset payload)
{
    // The chunk names its owning arena, so frees land on the free list
    // they were carved from no matter which tuple releases.
    PoolAllocator(region_, chunk(payload)->owner).release(payload);
}

std::uint32_t
ShardedPool::refcount(Offset payload) const
{
    return chunk(payload)->refcount.load(std::memory_order_acquire);
}

std::uint64_t
ShardedPool::liveAllocations() const
{
    ShardedPoolHeader *hdr = header();
    std::uint64_t sum =
        PoolAllocator(region_, hdr->global_header).liveAllocations();
    for (std::uint32_t s = 0; s < hdr->num_shards; ++s)
        sum += PoolAllocator(region_, hdr->shard_headers[s])
                   .liveAllocations();
    return sum;
}

std::uint64_t
ShardedPool::spills() const
{
    return header()->spills.load(std::memory_order_relaxed);
}

PoolStats
ShardedPool::stats() const
{
    ShardedPoolHeader *hdr = header();
    PoolStats out = {};
    out.num_shards = hdr->num_shards;
    out.spills = hdr->spills.load(std::memory_order_relaxed);
    out.global = PoolAllocator(region_, hdr->global_header).stats();
    for (std::uint32_t s = 0; s < hdr->num_shards; ++s)
        out.shard[s] = PoolAllocator(region_, hdr->shard_headers[s]).stats();
    return out;
}

} // namespace varan::shmem
