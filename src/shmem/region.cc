#include "shmem/region.h"

#include <cerrno>
#include <sys/mman.h>
#include <sys/syscall.h>
#include <unistd.h>

#ifndef MFD_CLOEXEC
#define MFD_CLOEXEC 0x0001U
#endif

namespace varan::shmem {

namespace {

/** memfd_create via raw syscall so we do not depend on libc coverage. */
int
makeMemfd(const char *name)
{
    return static_cast<int>(::syscall(SYS_memfd_create, name, MFD_CLOEXEC));
}

} // namespace

Region::~Region()
{
    if (base_)
        ::munmap(base_, size_);
}

Region::Region(Region &&other) noexcept
    : base_(other.base_), size_(other.size_), fd_(std::move(other.fd_)),
      carve_cursor_(other.carve_cursor_)
{
    other.base_ = nullptr;
    other.size_ = 0;
}

Region &
Region::operator=(Region &&other) noexcept
{
    if (this != &other) {
        if (base_)
            ::munmap(base_, size_);
        base_ = other.base_;
        size_ = other.size_;
        fd_ = std::move(other.fd_);
        carve_cursor_ = other.carve_cursor_;
        other.base_ = nullptr;
        other.size_ = 0;
    }
    return *this;
}

Result<Region>
Region::create(std::size_t size)
{
    int mfd = makeMemfd("varan-shm");
    if (mfd < 0)
        return errnoResult<Region>();
    Fd fd(mfd);
    if (::ftruncate(fd.get(), static_cast<off_t>(size)) < 0)
        return errnoResult<Region>();
    return fromFd(std::move(fd), size);
}

Result<Region>
Region::fromFd(Fd fd, std::size_t size)
{
    void *p = ::mmap(nullptr, size, PROT_READ | PROT_WRITE, MAP_SHARED,
                     fd.get(), 0);
    if (p == MAP_FAILED)
        return errnoResult<Region>();
    Region r;
    r.base_ = p;
    r.size_ = size;
    r.fd_ = std::move(fd);
    return r;
}

Offset
Region::carve(std::size_t size, std::size_t align)
{
    VARAN_CHECK(align > 0 && (align & (align - 1)) == 0);
    std::size_t off = (carve_cursor_ + align - 1) & ~(align - 1);
    VARAN_CHECK(off + size <= size_);
    carve_cursor_ = off + size;
    return off;
}

Offset
Region::carveRemainder(std::size_t *bytes_out, std::size_t align)
{
    VARAN_CHECK(align > 0 && (align & (align - 1)) == 0);
    std::size_t off = (carve_cursor_ + align - 1) & ~(align - 1);
    VARAN_CHECK(off < size_);
    carve_cursor_ = size_;
    if (bytes_out)
        *bytes_out = size_ - off;
    return off;
}

} // namespace varan::shmem
