/**
 * @file
 * Shared-memory region mapped into every variant's address space.
 *
 * The coordinator creates one Region before forking variants (the "shm"
 * segment of Figure 2); the ring buffers, Lamport clocks, control block
 * and payload pool are all carved out of it. Everything stored inside is
 * position-independent: structures reference each other by byte offset,
 * never by pointer, so the region works across fork and exec.
 */

#ifndef VARAN_SHMEM_REGION_H
#define VARAN_SHMEM_REGION_H

#include <atomic>
#include <cstddef>
#include <cstdint>

#include "common/fd.h"
#include "common/logging.h"
#include "common/macros.h"
#include "common/result.h"

namespace varan::shmem {

/** Byte offset into a Region. Offset 0 is reserved as "null". */
using Offset = std::uint64_t;

/**
 * An anonymous shared mapping backed by a memfd.
 *
 * The backing fd is retained so the segment can be duplicated into a
 * process that did not inherit the mapping (exec-mode variants), exactly
 * like the descriptor the coordinator sends to freshly spawned versions
 * in section 3.1.
 */
class Region
{
  public:
    Region() = default;
    ~Region();

    VARAN_NO_COPY(Region);
    Region(Region &&other) noexcept;
    Region &operator=(Region &&other) noexcept;

    /** Create a zero-filled shared region of @p size bytes. */
    static Result<Region> create(std::size_t size);

    /** Map an existing region from its backing descriptor. */
    static Result<Region> fromFd(Fd fd, std::size_t size);

    void *base() const { return base_; }
    std::size_t size() const { return size_; }
    int fd() const { return fd_.get(); }
    bool valid() const { return base_ != nullptr; }

    /** Close the backing descriptor; the mapping stays valid. Variants
     *  do this after fork so the descriptor number is free for the
     *  application (descriptor-table mirroring needs identical layouts
     *  in every variant). */
    void closeBackingFd() { fd_.reset(); }

    /** Resolve an offset to a typed pointer in this mapping. */
    template <typename T>
    T *
    at(Offset off) const
    {
        VARAN_CHECK(off != 0 && off + sizeof(T) <= size_);
        return reinterpret_cast<T *>(static_cast<char *>(base_) + off);
    }

    /** Resolve an offset to raw bytes. */
    void *
    bytesAt(Offset off, std::size_t len) const
    {
        VARAN_CHECK(off != 0 && off + len <= size_);
        return static_cast<char *>(base_) + off;
    }

    /** Inverse of at(): offset of a pointer inside this mapping. */
    Offset
    offsetOf(const void *p) const
    {
        auto c = static_cast<const char *>(p);
        auto b = static_cast<const char *>(base_);
        VARAN_CHECK(c >= b && c < b + size_);
        return static_cast<Offset>(c - b);
    }

    /**
     * Bump-allocate @p size bytes (aligned) during setup.
     *
     * Only the coordinator uses this, before any variant runs; it is not
     * thread-safe and exists to carve the static layout (control block,
     * rings, clocks). The pool allocator owns everything after the
     * final carve.
     */
    Offset carve(std::size_t size, std::size_t align = kCacheLineSize);

    /**
     * Consume everything carve() has not handed out yet: returns the
     * aligned offset of the remainder and its byte count, and moves the
     * cursor to the end so later carve() calls fail loudly instead of
     * silently overlapping the consumed tail. The pool takes the whole
     * remainder this way after the static layout is carved.
     */
    Offset carveRemainder(std::size_t *bytes_out,
                          std::size_t align = kCacheLineSize);

    /** Bytes still available for carve(). */
    std::size_t carveRemaining() const { return size_ - carve_cursor_; }

  private:
    void *base_ = nullptr;
    std::size_t size_ = 0;
    Fd fd_;
    std::size_t carve_cursor_ = kCacheLineSize; // offset 0 stays unused
};

} // namespace varan::shmem

#endif // VARAN_SHMEM_REGION_H
