/**
 * @file
 * A mutex that lives in shared memory and synchronises across processes.
 *
 * Implements the classic three-state futex mutex (0 = free, 1 = locked,
 * 2 = locked with waiters). The paper uses such locks only around pool
 * allocation/deallocation (section 3.3.1: "locks are used only during
 * memory allocation and deallocation").
 */

#ifndef VARAN_SHMEM_FUTEX_LOCK_H
#define VARAN_SHMEM_FUTEX_LOCK_H

#include <atomic>
#include <cstdint>

#include "common/futex.h"
#include "common/macros.h"

namespace varan::shmem {

class FutexLock
{
  public:
    FutexLock() = default;
    VARAN_NO_COPY_NO_MOVE(FutexLock);

    void
    lock()
    {
        std::uint32_t expected = 0;
        if (state_.compare_exchange_strong(expected, 1,
                                           std::memory_order_acquire))
            return;
        lockSlow();
    }

    void
    unlock()
    {
        if (state_.exchange(0, std::memory_order_release) == 2)
            futexWake(&state_, 1);
    }

    /** Try once without blocking. */
    bool
    tryLock()
    {
        std::uint32_t expected = 0;
        return state_.compare_exchange_strong(expected, 1,
                                              std::memory_order_acquire);
    }

  private:
    void lockSlow();

    std::atomic<std::uint32_t> state_{0};
};

/** RAII guard for FutexLock. */
class FutexLockGuard
{
  public:
    explicit FutexLockGuard(FutexLock &lock) : lock_(lock) { lock_.lock(); }
    ~FutexLockGuard() { lock_.unlock(); }
    VARAN_NO_COPY_NO_MOVE(FutexLockGuard);

  private:
    FutexLock &lock_;
};

} // namespace varan::shmem

#endif // VARAN_SHMEM_FUTEX_LOCK_H
