/**
 * @file
 * Blocking socket I/O helpers shared by the wire shipper and receiver.
 *
 * Deliberately plain libc (not the varan::sys layer): wire endpoints
 * run in coordinator context where nothing must stream, and routing
 * these calls through an installed Dispatcher would be wrong. All
 * sends use MSG_NOSIGNAL so a dead peer surfaces as EPIPE, and both
 * directions honour SO_SNDTIMEO/SO_RCVTIMEO set on the socket — a
 * timed-out transfer returns false and the caller drops the link.
 */

#ifndef VARAN_WIRE_IO_H
#define VARAN_WIRE_IO_H

#include <cerrno>
#include <cstddef>
#include <sys/socket.h>
#include <sys/uio.h>
#include <unistd.h>

namespace varan::wire {

/** Read exactly @p len bytes; false on EOF, error or timeout. */
inline bool
readFull(int fd, void *buf, std::size_t len)
{
    auto *p = static_cast<char *>(buf);
    while (len > 0) {
        ssize_t n = ::read(fd, p, len);
        if (n < 0) {
            if (errno == EINTR)
                continue;
            return false;
        }
        if (n == 0)
            return false;
        p += n;
        len -= static_cast<std::size_t>(n);
    }
    return true;
}

/** Gather-write the whole iovec array (one writev-shaped sendmsg per
 *  round); short writes retry on the remainder. */
inline bool
writevAll(int fd, struct iovec *iov, int iovcnt)
{
    while (iovcnt > 0) {
        struct msghdr msg = {};
        msg.msg_iov = iov;
        msg.msg_iovlen = static_cast<std::size_t>(iovcnt);
        ssize_t n = ::sendmsg(fd, &msg, MSG_NOSIGNAL);
        if (n < 0) {
            if (errno == EINTR)
                continue;
            return false;
        }
        std::size_t left = static_cast<std::size_t>(n);
        while (iovcnt > 0 && left >= iov->iov_len) {
            left -= iov->iov_len;
            ++iov;
            --iovcnt;
        }
        if (iovcnt > 0 && left > 0) {
            iov->iov_base = static_cast<char *>(iov->iov_base) + left;
            iov->iov_len -= left;
        }
    }
    return true;
}

/** Write exactly @p len bytes; false on error or timeout. */
inline bool
writeFull(int fd, const void *buf, std::size_t len)
{
    struct iovec iov = {const_cast<void *>(buf), len};
    return writevAll(fd, &iov, 1);
}

} // namespace varan::wire

#endif // VARAN_WIRE_IO_H
