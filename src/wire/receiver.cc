#include "wire/receiver.h"

#include <cerrno>
#include <cstring>
#include <poll.h>
#include <sys/socket.h>
#include <sys/uio.h>
#include <unistd.h>

#include "common/clock.h"
#include "common/logging.h"
#include "netio/socketio.h"
#include "wire/io.h"

namespace varan::wire {

namespace {

/** Is any event in the run an externally-visible synchronization
 *  point (descriptor transfer, fork, exit)? Credits flush there. */
bool
hasAckPoint(const ring::Event *events, std::size_t count)
{
    for (std::size_t i = 0; i < count; ++i) {
        if (events[i].transfersFd() ||
            events[i].type == ring::EventType::Fork ||
            events[i].type == ring::EventType::Exit) {
            return true;
        }
    }
    return false;
}

} // namespace

Receiver::Receiver(const shmem::Region *region,
                   const core::EngineLayout *layout, Options options)
    : region_(region), layout_(layout), options_(std::move(options))
{
    if (options_.credit_every == 0)
        options_.credit_every = 1;
    // A stable identity for the shipper's session table: a fan-out
    // shipper matches a reconnecting receiver to its session (credit
    // cursors, retransmit tail) by this value, not by socket.
    receiver_id_ =
        (static_cast<std::uint64_t>(::getpid()) << 32) ^ monotonicNs() ^
        reinterpret_cast<std::uintptr_t>(this);
    // The quorum control plane (v6): a configured membership gates
    // promotion on a granted lease. Election rounds stamp the shared
    // flight recorder unless the caller pointed them elsewhere.
    if (options_.quorum.valid()) {
        if (options_.quorum.trace == nullptr) {
            options_.quorum.trace =
                &layout_->controlBlock(region_)->trace;
        }
        lease_ =
            std::make_unique<quorum::LeaseManager>(options_.quorum);
    }
}

Receiver::~Receiver()
{
    stopping_.store(true, std::memory_order_release);
    if (thread_.joinable())
        thread_.join();
}

void
Receiver::sendHandshakeError(int socket_fd, WireError code,
                             const HelloBody &hello)
{
    ErrorBody error = {};
    error.code = static_cast<std::uint32_t>(code);
    error.local_epoch = last_epoch_;
    error.local_generation = last_generation_;
    error.peer_epoch = hello.engine_epoch;
    error.peer_generation = hello.stream_generation;
    std::uint8_t frame[kErrorFrameBytes];
    encodeErrorFrame(error, frame);
    writeFull(socket_fd, frame, sizeof(frame));
    ++stats_.errors_sent;
}

Status
Receiver::adopt(int socket_fd)
{
    std::lock_guard<std::mutex> guard(mutex_);
    if (seen_hello_)
        ++stats_.reconnects;
    socket_fd_ = socket_fd;

    // Bound credit writes and frame reads the same way the shipper
    // bounds its side: a wedged peer (stalled mid-frame, or a
    // connector that never sends its Hello) becomes a dropped link or
    // a failed adopt, never a hang.
    struct timeval io_timeout = {10, 0};
    ::setsockopt(socket_fd_, SOL_SOCKET, SO_SNDTIMEO, &io_timeout,
                 sizeof(io_timeout));
    ::setsockopt(socket_fd_, SOL_SOCKET, SO_RCVTIMEO, &io_timeout,
                 sizeof(io_timeout));

    FrameHeader header = {};
    if (!readFull(socket_fd_, &header, sizeof(header)))
        return Status(Errno{EPIPE});
    if (!headerValid(header) ||
        static_cast<FrameType>(header.type) != FrameType::Hello ||
        header.body_len != sizeof(HelloBody)) {
        return Status(Errno{EPROTO});
    }
    HelloBody hello = {};
    if (!readFull(socket_fd_, &hello, sizeof(hello)))
        return Status(Errno{EPIPE});
    if (header.body_crc != bodyChecksum(&hello, sizeof(hello)))
        return Status(Errno{EPROTO});

    // Geometry must match the local layout bit for bit: the follower
    // replays against rings and arenas shaped like the leader's.
    core::ControlBlock *cb = layout_->controlBlock(region_);
    if (hello.ring_capacity != cb->ring_capacity ||
        hello.max_tuples != core::kMaxTuples) {
        sendHandshakeError(socket_fd_, WireError::GeometryMismatch, hello);
        return Status(Errno{EPROTO});
    }

    // A promoted node leads its own generation and consumes no stream:
    // nothing shipped here would ever be read (the serve loop is
    // parked). Refuse decodably — this is what a concurrently promoted
    // sibling sees, where the stale checks below would wrongly pass an
    // equal-or-newer stamp and mirror a foreign stamp into an engine
    // that is itself leading.
    if (promoted_.load(std::memory_order_acquire)) {
        warn("wire receiver: refusing shipper (gen %u epoch %u) — this "
             "node promoted and leads generation %u",
             hello.stream_generation, hello.engine_epoch,
             last_generation_);
        sendHandshakeError(socket_fd_, WireError::PeerNotReceiving,
                           hello);
        return Status(Errno{EBUSY});
    }

    // Epoch reconciliation: never accept a stream older than what this
    // receiver already reconciled against. A resurrected pre-failover
    // leader (stale generation) or a leader whose epoch regressed
    // within a generation must not rewind the materialized stream —
    // answer with a decodable Error so the operator sees *why*.
    if (hello.stream_generation < last_generation_) {
        warn("wire receiver: rejecting stale generation %u (reconciled "
             "against %u)",
             hello.stream_generation, last_generation_);
        sendHandshakeError(socket_fd_, WireError::StaleGeneration, hello);
        return Status(Errno{EPROTO});
    }
    if (hello.stream_generation == last_generation_ &&
        hello.engine_epoch < last_epoch_) {
        warn("wire receiver: rejecting stale epoch %u (reconciled "
             "against %u in generation %u)",
             hello.engine_epoch, last_epoch_, last_generation_);
        sendHandshakeError(socket_fd_, WireError::StaleEpoch, hello);
        return Status(Errno{EPROTO});
    }
    if (hello.stream_generation > last_generation_ &&
        last_generation_ != 0) {
        // A promotion happened upstream: the new leader continues the
        // same logical stream from what its node materialized, so our
        // prefix and resume cursors stay valid — rebase, don't reset.
        inform("wire receiver: rebasing onto generation %u epoch %u "
               "(was %u/%u)",
               hello.stream_generation, hello.engine_epoch,
               last_generation_, last_epoch_);
        ++stats_.rebases;
    }
    last_epoch_ = hello.engine_epoch;
    last_generation_ = hello.stream_generation;
    // Mirror the adopted stamp into the local control block so
    // collectStatus() on this node reports the stream it consumes.
    cb->epoch.store(last_epoch_, std::memory_order_release);
    cb->stream_generation.store(last_generation_,
                                std::memory_order_release);

    hello_ = hello;
    seen_hello_ = true;
    // A cached status reply belongs to the previous peer (failover may
    // have handed us a different node): force a fresh request.
    seen_status_ = false;

    HelloAckBody ack = {};
    ack.max_tuples = core::kMaxTuples;
    ack.engine_epoch = last_epoch_;
    ack.stream_generation = last_generation_;
    ack.receiver_id = receiver_id_;
    for (std::uint32_t t = 0; t < core::kMaxTuples; ++t)
        ack.next_seq[t] = next_seq_[t];
    FrameHeader ack_header = makeHeader(FrameType::HelloAck, sizeof(ack));
    ack_header.body_crc = bodyChecksum(&ack, sizeof(ack));
    struct iovec iov[2] = {{&ack_header, sizeof(ack_header)},
                           {&ack, sizeof(ack)}};
    if (!writevAll(socket_fd_, iov, 2))
        return Status::fromErrno();

    // First successful adopt opens the file sink; reconnects keep
    // appending to the same capture (duplicate suppression above
    // guarantees each event is logged exactly once).
    if (!options_.record_path.empty() && !log_.isOpen() &&
        log_.error() == 0) {
        Status opened = log_.open(options_.record_path);
        if (!opened.isOk()) {
            warn("wire receiver: cannot open record log %s: %s",
                 options_.record_path.c_str(),
                 opened.error().message().c_str());
            stats_.log_errno = opened.error().code;
        } else {
            log_.setFlushThreshold(64u << 10);
        }
    }

    link_up_.store(true, std::memory_order_release);
    return Status::ok();
}

void
Receiver::dropLink()
{
    link_up_.store(false, std::memory_order_release);
}

void
Receiver::sendCredit(std::uint32_t tuple)
{
    CreditEntry entry = {};
    entry.tuple = tuple;
    entry.delivered = next_seq_[tuple];
    FrameHeader header = makeHeader(FrameType::Credit, sizeof(entry));
    header.count = 1;
    header.body_crc = bodyChecksum(&entry, sizeof(entry));
    std::uint8_t frame[sizeof(header) + sizeof(entry)];
    std::memcpy(frame, &header, sizeof(header));
    std::memcpy(frame + sizeof(header), &entry, sizeof(entry));
    if (!writeFull(socket_fd_, frame, sizeof(frame))) {
        dropLink();
        return;
    }
    credited_[tuple] = next_seq_[tuple];
    uncredited_[tuple] = 0;
    ++stats_.credits_sent;
}

bool
Receiver::prepareEvent(std::uint32_t tuple, ring::Event &event,
                       const std::uint8_t *payload_bytes)
{
    core::ControlBlock *cb = layout_->controlBlock(region_);
    shmem::ShardedPool pool = layout_->pool(region_);

    // Re-host the payload in the local arena of the publishing tuple —
    // the follower resolves offsets against its local pool exactly as
    // it would against the leader's.
    if (event.hasPayload() && event.payload_size > 0) {
        shmem::Offset payload =
            pool.allocate(tuple, event.payload_size, 1);
        if (payload == 0) {
            warn("wire receiver: local pool exhausted (%u bytes)",
                 event.payload_size);
            return false;
        }
        std::memcpy(pool.pointer(payload, event.payload_size),
                    payload_bytes, event.payload_size);
        event.payload = static_cast<std::uint32_t>(payload);
        stats_.payload_bytes += event.payload_size;
    } else if (event.hasPayload()) {
        event.flags &= ~static_cast<std::uint32_t>(ring::kHasPayload);
        event.payload = 0;
    }

    // No data channel spans nodes: descriptor transfer is virtual, the
    // remote follower mirrors numbers from the event alone.
    event.flags &= ~static_cast<std::uint32_t>(ring::kFdTransfer);

    // Fork events open tuples here exactly as a live leader would.
    if (event.type == ring::EventType::Fork) {
        auto t = static_cast<std::uint32_t>(event.args[0]);
        if (t < core::kMaxTuples) {
            std::uint32_t current =
                cb->num_tuples.load(std::memory_order_acquire);
            while (current <= t &&
                   !cb->num_tuples.compare_exchange_weak(
                       current, t + 1, std::memory_order_acq_rel)) {
            }
            cb->tuples[t].active.store(1, std::memory_order_release);
        }
    }
    return true;
}

std::size_t
Receiver::publishRun(std::uint32_t tuple, ring::Event *events,
                     std::size_t count)
{
    // The batched mirror of the shipper's relaxed shipping: one
    // claim/commit — one head store, one wake — per ring chunk rather
    // than per event. Shadow recycling per claimed slot, exactly like
    // the leader-side coalesced path.
    core::ControlBlock *cb = layout_->controlBlock(region_);
    shmem::ShardedPool pool = layout_->pool(region_);
    ring::RingBuffer ring = layout_->tupleRing(region_, tuple);
    std::uint64_t *shadow = layout_->tupleShadow(region_, tuple);
    const std::uint64_t mask = cb->ring_capacity - 1;
    ring::WaitSpec wait;
    wait.timeout_ns = options_.publish_timeout_ns;

    std::size_t done = 0;
    while (done < count) {
        const std::size_t chunk =
            std::min<std::size_t>(count - done, cb->ring_capacity);
        std::uint64_t seq = 0;
        if (!ring.claim(chunk, &seq, wait)) {
            warn("wire receiver: local ring %u wedged", tuple);
            break;
        }
        for (std::size_t k = 0; k < chunk; ++k) {
            const ring::Event &event = events[done + k];
            std::uint64_t idx = (seq + k) & mask;
            if (shadow[idx] != 0)
                pool.release(shadow[idx]);
            shadow[idx] = event.hasPayload() ? event.payload : 0;
        }
        ring.commit({events + done, chunk});
        done += chunk;
    }
    cb->events_streamed.fetch_add(done, std::memory_order_relaxed);
    if (done > 0 && trace::enabled(cb->trace)) {
        trace::stamp(cb->trace, trace::Stage::ReceiverPublish, 0,
                     static_cast<std::uint8_t>(tuple),
                     static_cast<std::uint32_t>(done), monotonicNs(),
                     count);
    }
    return done;
}

void
Receiver::releasePrepared(ring::Event *events, std::size_t count)
{
    shmem::ShardedPool pool = layout_->pool(region_);
    for (std::size_t i = 0; i < count; ++i) {
        if (events[i].hasPayload() && events[i].payload != 0)
            pool.release(events[i].payload);
    }
}

bool
Receiver::applyEvents(const FrameHeader &header,
                      std::vector<std::uint8_t> &body)
{
    const std::uint32_t tuple = header.tuple;
    const std::size_t count = header.count;
    if (body.size() < count * sizeof(ring::Event)) {
        ++stats_.corrupt_frames;
        return false;
    }
    auto *events = reinterpret_cast<ring::Event *>(body.data());
    if (eventsPayloadBytes(events, count) !=
        body.size() - count * sizeof(ring::Event)) {
        ++stats_.corrupt_frames;
        return false;
    }

    // Decide the ack policy on the pristine events: prepareEvent
    // rewrites flags (kFdTransfer is virtualised away) as it goes.
    const bool ack_point = hasAckPoint(events, count);

    // Frames carry a contiguous sequence run, so retransmit overlap is
    // always a prefix: drop already-delivered events, reject holes.
    if (header.seq + count <= next_seq_[tuple]) {
        stats_.duplicates_dropped += count;
        return true; // whole frame already delivered
    }
    if (header.seq > next_seq_[tuple]) {
        warn("wire receiver: tuple %u gap (want %llu, got %llu)", tuple,
             static_cast<unsigned long long>(next_seq_[tuple]),
             static_cast<unsigned long long>(header.seq));
        ++stats_.corrupt_frames;
        return false;
    }
    const std::size_t skip =
        static_cast<std::size_t>(next_seq_[tuple] - header.seq);
    stats_.duplicates_dropped += skip;

    const std::uint8_t *payload_cursor =
        body.data() + count * sizeof(ring::Event);
    for (std::size_t i = 0; i < count; ++i) {
        ring::Event &event = events[i];
        const std::uint8_t *payload = payload_cursor;
        if (event.hasPayload())
            payload_cursor += event.payload_size;
        if (i < skip)
            continue; // duplicate prefix: payload bytes consumed above
        if (!prepareEvent(tuple, event, payload)) {
            // Already-prepared events own local pool chunks; drop them
            // or a retransmit after reconnect would re-allocate and
            // leak them — compounding the exhaustion that failed us.
            releasePrepared(events + skip, i - skip);
            return false;
        }
    }

    const std::size_t fresh = count - skip;
    const std::size_t published =
        publishRun(tuple, events + skip, fresh);
    // Committed slots own their payloads (the shadow releases them on
    // reuse); the unpublished tail must be released here. next_seq_
    // advances only past what landed, so a reconnect retransmits the
    // rest cleanly.
    if (published < fresh)
        releasePrepared(events + skip + published, fresh - published);
    next_seq_[tuple] += published;
    stats_.events += published;
    uncredited_[tuple] += published;

    // File-backed sink: persist exactly the published window, reading
    // payload bytes from the pristine wire body (prepareEvent left
    // payload_size untouched). A latched writer error makes every
    // append a fast no-op, so a dead disk never jeopardises the link.
    if (log_.isOpen() && published > 0) {
        const std::uint8_t *cursor =
            body.data() + count * sizeof(ring::Event);
        for (std::size_t i = 0; i < skip + published; ++i) {
            const std::uint8_t *payload = cursor;
            const std::size_t size =
                events[i].hasPayload() ? events[i].payload_size : 0;
            cursor += size;
            if (i < skip)
                continue;
            if (log_.append(tuple, events[i], payload, size).isOk())
                ++stats_.logged_events;
        }
        if (ack_point)
            (void)log_.flush();
        if (log_.error() != 0 && stats_.log_errno == 0) {
            warn("wire receiver: record log failed: %s",
                 std::strerror(log_.error()));
            stats_.log_errno = log_.error();
        }
    }

    if (published < fresh)
        return false;

    // Relaxed acking: flush credits at externally-visible events or
    // once enough deliveries accumulated.
    if (ack_point || uncredited_[tuple] >= options_.credit_every)
        sendCredit(tuple);
    return true;
}

bool
Receiver::readFrame()
{
    FrameHeader header = {};
    if (!readFull(socket_fd_, &header, sizeof(header))) {
        dropLink();
        return false;
    }
    if (!headerValid(header)) {
        ++stats_.corrupt_frames;
        dropLink();
        return false;
    }
    std::vector<std::uint8_t> body(header.body_len);
    if (header.body_len > 0 &&
        !readFull(socket_fd_, body.data(), body.size())) {
        dropLink();
        return false;
    }
    if (header.body_crc != bodyChecksum(body.data(), body.size())) {
        ++stats_.corrupt_frames;
        dropLink();
        return false;
    }

    ++stats_.frames;
    switch (static_cast<FrameType>(header.type)) {
      case FrameType::Events:
        if (!applyEvents(header, body)) {
            dropLink();
            return false;
        }
        return true;
      case FrameType::Status:
        // The status RPC reply: a serialized core::StatusReport.
        if (!decodeStatusFrame(header, body.data(), body.size(),
                               &remote_status_)) {
            ++stats_.corrupt_frames;
            dropLink();
            return false;
        }
        seen_status_ = true;
        ++stats_.status_reports;
        return true;
      case FrameType::Error:
        // A decodable rejection mid-stream (e.g. the shipper evicted
        // this receiver as too far behind): remember it and drop.
        if (decodeErrorFrame(header, body.data(), body.size(),
                             &last_error_)) {
            ++stats_.errors_received;
            warn("wire receiver: shipper reported error %u "
                 "(its epoch %u gen %u)",
                 last_error_.code, last_error_.local_epoch,
                 last_error_.local_generation);
        } else {
            ++stats_.corrupt_frames;
        }
        dropLink();
        return false;
      case FrameType::Bye:
        // Orderly end: flush remaining credits so the shipper retires
        // its retransmit buffer, then close down.
        for (std::uint32_t t = 0; t < core::kMaxTuples; ++t) {
            if (next_seq_[t] > credited_[t])
                sendCredit(t);
        }
        dropLink();
        return false;
      case FrameType::Hello:
      case FrameType::HelloAck:
      case FrameType::Credit:
      default:
        // Nothing the shipper should send mid-stream.
        ++stats_.corrupt_frames;
        dropLink();
        return false;
    }
}

int
Receiver::serveOnce(int timeout_ms)
{
    std::lock_guard<std::mutex> guard(mutex_);
    if (!link_up_.load(std::memory_order_acquire))
        return -1;
    struct pollfd pfd = {socket_fd_, POLLIN, 0};
    int frames = 0;
    for (;;) {
        int n = ::poll(&pfd, 1, frames == 0 ? timeout_ms : 0);
        if (n < 0 && errno == EINTR)
            continue;
        if (n <= 0)
            return frames;
        if (pfd.revents & (POLLERR | POLLNVAL)) {
            dropLink();
            return -1;
        }
        if (!readFrame())
            return -1;
        ++frames;
        if (stopping_.load(std::memory_order_acquire))
            return frames;
    }
}

bool
Receiver::promoteLocked(std::uint32_t *epoch_out,
                        std::uint32_t *leader_out)
{
    if (promoted_.load(std::memory_order_acquire) ||
        stopping_.load(std::memory_order_acquire)) {
        return false;
    }
    core::ControlBlock *cb = layout_->controlBlock(region_);
    if (cb->leader_id.load(std::memory_order_acquire) != core::kNoLeader) {
        // Not an external-leader engine (or already promoted): nothing
        // to take over.
        return false;
    }

    // The same election markVariantDead runs locally: the lowest live
    // LeaderCandidate takes over. FollowerOnly variants (sanitizer
    // builds) are never promoted, across nodes either.
    const std::uint32_t live =
        cb->live_mask.load(std::memory_order_acquire);
    std::uint32_t new_leader = core::kNoLeader;
    for (std::uint32_t v = 0; v < cb->num_variants; ++v) {
        if (!(live & (1u << v)))
            continue;
        if (cb->variants[v].role.load(std::memory_order_acquire) ==
            static_cast<std::uint32_t>(core::VariantRole::LeaderCandidate)) {
            new_leader = v;
            break;
        }
    }
    if (new_leader == core::kNoLeader) {
        warn("wire receiver: leader node lost but no local leader "
             "candidate survives — cannot promote");
        return false;
    }

    // The quorum gate (v6): win a lease for the bumped generation from
    // a majority of the membership *before* any side effect. A denied
    // or unreachable quorum means another receiver is promoting (or
    // this node is the partitioned minority, in which case acquire()
    // fenced it) — either way, nothing here may bump the stream.
    std::uint64_t lease_term = 0;
    if (lease_) {
        lease_term = lease_->acquire(last_generation_ + 1);
        if (lease_term == 0) {
            if (lease_->fenced()) {
                warn("wire receiver: promotion refused — fenced off "
                     "the quorum (term %llu); buffering until the "
                     "partition heals",
                     static_cast<unsigned long long>(lease_->term()));
            } else {
                inform("wire receiver: promotion lost the election "
                       "(term %llu held by node %u) — staying standby",
                       static_cast<unsigned long long>(lease_->term()),
                       lease_->holder());
            }
            return false;
        }
    }

    dropLink();

    // Arm the failover-blackout clock: the span from here to the
    // promoted leader's first publish is the cross-node blackout (the
    // actual leader death happened at least promote_after_ns earlier,
    // but this is the first moment this node *knows*). The first
    // post-promotion publishEvent consumes the mark.
    if (trace::enabled(cb->trace)) {
        std::uint64_t expected = 0;
        cb->trace.leader_death_ns.compare_exchange_strong(
            expected, monotonicNs(), std::memory_order_acq_rel);
    }

    // Standby shipping: attach the taps *before* the election so the
    // promoted stream is complete from its first event (nothing can
    // publish until leader_id flips).
    if (!options_.standby_peers.empty()) {
        promoted_shipper_ =
            std::make_unique<Shipper>(region_, layout_,
                                      options_.promoted_ship);
        Status taps = promoted_shipper_->attachTaps();
        if (!taps.isOk()) {
            warn("wire receiver: standby shipper tap attach failed: %s",
                 taps.error().message().c_str());
            promoted_shipper_.reset();
        }
    }

    const std::uint32_t epoch =
        cb->epoch.fetch_add(1, std::memory_order_acq_rel) + 1;
    const std::uint32_t generation =
        cb->stream_generation.fetch_add(1, std::memory_order_acq_rel) + 1;
    cb->promotions.fetch_add(1, std::memory_order_acq_rel);
    cb->leader_id.store(new_leader, std::memory_order_release);
    // A resurrected pre-failover shipper must fail the next adopt().
    last_epoch_ = epoch;
    last_generation_ = generation;
    promoted_.store(true, std::memory_order_release);
    if (trace::enabled(cb->trace)) {
        trace::stamp(cb->trace, trace::Stage::Election,
                     static_cast<std::uint8_t>(new_leader), 0, epoch,
                     monotonicNs(), generation, lease_term);
    }
    inform("wire receiver: leader node lost — promoted local variant %u "
           "(epoch %u, stream generation %u, lease term %llu)",
           new_leader, epoch, generation,
           static_cast<unsigned long long>(lease_term));

    // Ship the promoted stream to the surviving nodes. A standby that
    // cannot be reached just misses the new stream — promotion itself
    // must not fail on it.
    if (promoted_shipper_) {
        for (const std::string &endpoint : options_.standby_peers) {
            auto sock = netio::connectAbstract(endpoint, 2000);
            if (!sock.ok()) {
                warn("wire receiver: standby peer '%s' unreachable",
                     endpoint.c_str());
                continue;
            }
            Status added = promoted_shipper_->addPeer(sock.value());
            if (!added.isOk()) {
                warn("wire receiver: standby peer '%s' refused the "
                     "promoted stream: %s",
                     endpoint.c_str(), added.error().message().c_str());
                ::close(sock.value());
            }
        }
        promoted_shipper_->start();
    }

    *epoch_out = epoch;
    *leader_out = new_leader;
    return true;
}

bool
Receiver::promoteNow()
{
    std::uint32_t epoch = 0;
    std::uint32_t leader = 0;
    bool took_over = false;
    {
        std::lock_guard<std::mutex> guard(mutex_);
        took_over = promoteLocked(&epoch, &leader);
    }
    // The hook runs unlocked so it may call back into the receiver
    // (stats(), localStatus()) without deadlocking.
    if (took_over && options_.on_promote)
        options_.on_promote(epoch, leader);
    return took_over;
}

void
Receiver::shipDivergences()
{
    std::lock_guard<std::mutex> guard(mutex_);
    if (!link_up_.load(std::memory_order_acquire))
        return;
    core::ControlBlock *cb = layout_->controlBlock(region_);
    trace::DivergenceRecord records[kDivergenceFrameMaxRecords];
    const std::size_t n =
        trace::ledgerRead(cb->trace, &ledger_ship_cursor_, records,
                          kDivergenceFrameMaxRecords);
    if (n == 0)
        return;
    std::uint8_t frame[kDivergenceFrameMaxBytes];
    const std::size_t len = encodeDivergenceFrame(
        records, static_cast<std::uint32_t>(n), frame);
    if (!writeFull(socket_fd_, frame, len)) {
        dropLink();
        return;
    }
    stats_.divergence_records_sent += n;
}

void
Receiver::serveLoop()
{
    // quiet = no frame arrived and no adopt() succeeded. Once it
    // exceeds promote_after the leader node is presumed dead; halfway
    // there, a Status request doubles as a liveness probe so an idle
    // but healthy leader is never deposed (its reply is a frame and
    // resets the clock).
    std::uint64_t quiet_since = monotonicNs();
    bool probe_sent = false;
    const std::uint64_t promote_after = options_.promote_after_ns;

    while (!stopping_.load(std::memory_order_acquire)) {
        if (promoted_.load(std::memory_order_acquire)) {
            // This node leads now; the promoted shipper's own pump
            // serves the stream. Stay parked until finish().
            sleepNs(1000000);
            continue;
        }
        if (link_up_.load(std::memory_order_acquire)) {
            int frames = serveOnce(options_.tick_ms);
            // Local followers replaying the remote stream append their
            // divergences to this node's ledger; relay anything new
            // upstream so the leader's coordinator sees it.
            shipDivergences();
            if (frames > 0) {
                quiet_since = monotonicNs();
                probe_sent = false;
                continue;
            }
            if (frames < 0)
                continue; // link dropped; the quiet clock keeps running
            if (promote_after == 0)
                continue;
            const std::uint64_t now = monotonicNs();
            if (!probe_sent && now - quiet_since > promote_after / 2) {
                // Idle or dead? Ask. requestStatus() drops the link
                // itself when the socket is already gone.
                requestStatus();
                probe_sent = true;
            }
            if (now - quiet_since > promote_after &&
                !promoteNow()) {
                // Lost the election or fenced: another receiver is
                // taking (or holds) the lease. Back off a full
                // deadline before contending again.
                quiet_since = monotonicNs();
                probe_sent = false;
            }
        } else {
            // Link down: wait for an adopt() from the failover path —
            // or take over when nobody re-connects in time.
            if (promote_after != 0 &&
                monotonicNs() - quiet_since > promote_after) {
                if (!promoteNow()) {
                    quiet_since = monotonicNs();
                    probe_sent = false;
                }
                continue;
            }
            sleepNs(1000000);
            if (link_up_.load(std::memory_order_acquire)) {
                quiet_since = monotonicNs();
                probe_sent = false;
            }
        }
    }
}

void
Receiver::start()
{
    VARAN_CHECK(!thread_.joinable());
    if (lease_) {
        if (!options_.quorum.listen_endpoint.empty()) {
            Status listening = lease_->listen();
            if (!listening.isOk()) {
                warn("wire receiver: quorum listen on '%s' failed: %s",
                     options_.quorum.listen_endpoint.c_str(),
                     listening.error().message().c_str());
            }
        }
        lease_->dialPeers();
        lease_->start();
    }
    thread_ = std::thread([this] { serveLoop(); });
}

Status
Receiver::finish()
{
    stopping_.store(true, std::memory_order_release);
    if (thread_.joinable())
        thread_.join();
    if (lease_)
        lease_->stop();
    if (promoted_shipper_)
        promoted_shipper_->finish();
    std::lock_guard<std::mutex> guard(mutex_);
    if (link_up_.load(std::memory_order_acquire)) {
        FrameHeader bye = makeHeader(FrameType::Bye, 0);
        writeFull(socket_fd_, &bye, sizeof(bye));
        dropLink();
    }
    if (log_.isOpen()) {
        Status closed = log_.close();
        if (!closed.isOk() && stats_.log_errno == 0)
            stats_.log_errno = closed.error().code;
    }
    return Status::ok();
}

Status
Receiver::requestStatus()
{
    std::lock_guard<std::mutex> guard(mutex_);
    if (!link_up_.load(std::memory_order_acquire))
        return Status(Errno{EPIPE});
    FrameHeader request = makeStatusRequest();
    if (!writeFull(socket_fd_, &request, sizeof(request))) {
        dropLink();
        return Status(Errno{EPIPE});
    }
    ++stats_.status_requests;
    return Status::ok();
}

bool
Receiver::remoteStatus(core::StatusReport *out) const
{
    std::lock_guard<std::mutex> guard(mutex_);
    if (!seen_status_)
        return false;
    *out = remote_status_;
    return true;
}

core::StatusReport
Receiver::localStatus() const
{
    core::StatusReport report = core::collectStatus(region_, *layout_);
    std::lock_guard<std::mutex> guard(mutex_);
    report.receiver.active = 1;
    report.receiver.link_up =
        link_up_.load(std::memory_order_acquire) ? 1 : 0;
    report.receiver.promoted =
        promoted_.load(std::memory_order_acquire) ? 1 : 0;
    report.receiver.fenced = lease_ && lease_->fenced() ? 1 : 0;
    report.receiver.errors = static_cast<std::uint32_t>(
        stats_.errors_sent + stats_.errors_received);
    report.receiver.frames = stats_.frames;
    report.receiver.events = stats_.events;
    report.receiver.payload_bytes = stats_.payload_bytes;
    report.receiver.duplicates_dropped = stats_.duplicates_dropped;
    report.receiver.corrupt_frames = stats_.corrupt_frames;
    report.receiver.credits_sent = stats_.credits_sent;
    report.receiver.reconnects = stats_.reconnects;
    if (lease_)
        lease_->fillStatus(&report.quorum);
    return report;
}

std::uint64_t
Receiver::nextSeq(std::uint32_t tuple) const
{
    std::lock_guard<std::mutex> guard(mutex_);
    VARAN_CHECK(tuple < core::kMaxTuples);
    return next_seq_[tuple];
}

ErrorBody
Receiver::lastError() const
{
    std::lock_guard<std::mutex> guard(mutex_);
    return last_error_;
}

Receiver::Stats
Receiver::stats() const
{
    std::lock_guard<std::mutex> guard(mutex_);
    return stats_;
}

} // namespace varan::wire
