#include "wire/receiver.h"

#include <cerrno>
#include <cstring>
#include <poll.h>
#include <sys/socket.h>
#include <sys/uio.h>
#include <unistd.h>

#include "common/clock.h"
#include "common/logging.h"
#include "wire/io.h"

namespace varan::wire {

namespace {

/** Is any event in the run an externally-visible synchronization
 *  point (descriptor transfer, fork, exit)? Credits flush there. */
bool
hasAckPoint(const ring::Event *events, std::size_t count)
{
    for (std::size_t i = 0; i < count; ++i) {
        if (events[i].transfersFd() ||
            events[i].type == ring::EventType::Fork ||
            events[i].type == ring::EventType::Exit) {
            return true;
        }
    }
    return false;
}

} // namespace

Receiver::Receiver(const shmem::Region *region,
                   const core::EngineLayout *layout, Options options)
    : region_(region), layout_(layout), options_(options)
{
    if (options_.credit_every == 0)
        options_.credit_every = 1;
}

Receiver::~Receiver()
{
    stopping_.store(true, std::memory_order_release);
    if (thread_.joinable())
        thread_.join();
}

Status
Receiver::adopt(int socket_fd)
{
    std::lock_guard<std::mutex> guard(mutex_);
    if (seen_hello_)
        ++stats_.reconnects;
    socket_fd_ = socket_fd;

    // Bound credit writes and frame reads the same way the shipper
    // bounds its side: a wedged peer (stalled mid-frame, or a
    // connector that never sends its Hello) becomes a dropped link or
    // a failed adopt, never a hang.
    struct timeval io_timeout = {10, 0};
    ::setsockopt(socket_fd_, SOL_SOCKET, SO_SNDTIMEO, &io_timeout,
                 sizeof(io_timeout));
    ::setsockopt(socket_fd_, SOL_SOCKET, SO_RCVTIMEO, &io_timeout,
                 sizeof(io_timeout));

    FrameHeader header = {};
    if (!readFull(socket_fd_, &header, sizeof(header)))
        return Status(Errno{EPIPE});
    if (!headerValid(header) ||
        static_cast<FrameType>(header.type) != FrameType::Hello ||
        header.body_len != sizeof(HelloBody)) {
        return Status(Errno{EPROTO});
    }
    HelloBody hello = {};
    if (!readFull(socket_fd_, &hello, sizeof(hello)))
        return Status(Errno{EPIPE});
    if (header.body_crc != bodyChecksum(&hello, sizeof(hello)))
        return Status(Errno{EPROTO});

    // Geometry must match the local layout bit for bit: the follower
    // replays against rings and arenas shaped like the leader's.
    core::ControlBlock *cb = layout_->controlBlock(region_);
    if (hello.ring_capacity != cb->ring_capacity ||
        hello.max_tuples != core::kMaxTuples) {
        return Status(Errno{EPROTO});
    }
    hello_ = hello;
    seen_hello_ = true;
    // A cached status reply belongs to the previous peer (failover may
    // have handed us a different node): force a fresh request.
    seen_status_ = false;

    HelloAckBody ack = {};
    ack.max_tuples = core::kMaxTuples;
    for (std::uint32_t t = 0; t < core::kMaxTuples; ++t)
        ack.next_seq[t] = next_seq_[t];
    FrameHeader ack_header = makeHeader(FrameType::HelloAck, sizeof(ack));
    ack_header.body_crc = bodyChecksum(&ack, sizeof(ack));
    struct iovec iov[2] = {{&ack_header, sizeof(ack_header)},
                           {&ack, sizeof(ack)}};
    if (!writevAll(socket_fd_, iov, 2))
        return Status::fromErrno();
    link_up_.store(true, std::memory_order_release);
    return Status::ok();
}

void
Receiver::dropLink()
{
    link_up_.store(false, std::memory_order_release);
}

void
Receiver::sendCredit(std::uint32_t tuple)
{
    CreditEntry entry = {};
    entry.tuple = tuple;
    entry.delivered = next_seq_[tuple];
    FrameHeader header = makeHeader(FrameType::Credit, sizeof(entry));
    header.count = 1;
    header.body_crc = bodyChecksum(&entry, sizeof(entry));
    std::uint8_t frame[sizeof(header) + sizeof(entry)];
    std::memcpy(frame, &header, sizeof(header));
    std::memcpy(frame + sizeof(header), &entry, sizeof(entry));
    if (!writeFull(socket_fd_, frame, sizeof(frame))) {
        dropLink();
        return;
    }
    credited_[tuple] = next_seq_[tuple];
    uncredited_[tuple] = 0;
    ++stats_.credits_sent;
}

bool
Receiver::prepareEvent(std::uint32_t tuple, ring::Event &event,
                       const std::uint8_t *payload_bytes)
{
    core::ControlBlock *cb = layout_->controlBlock(region_);
    shmem::ShardedPool pool = layout_->pool(region_);

    // Re-host the payload in the local arena of the publishing tuple —
    // the follower resolves offsets against its local pool exactly as
    // it would against the leader's.
    if (event.hasPayload() && event.payload_size > 0) {
        shmem::Offset payload =
            pool.allocate(tuple, event.payload_size, 1);
        if (payload == 0) {
            warn("wire receiver: local pool exhausted (%u bytes)",
                 event.payload_size);
            return false;
        }
        std::memcpy(pool.pointer(payload, event.payload_size),
                    payload_bytes, event.payload_size);
        event.payload = static_cast<std::uint32_t>(payload);
        stats_.payload_bytes += event.payload_size;
    } else if (event.hasPayload()) {
        event.flags &= ~static_cast<std::uint32_t>(ring::kHasPayload);
        event.payload = 0;
    }

    // No data channel spans nodes: descriptor transfer is virtual, the
    // remote follower mirrors numbers from the event alone.
    event.flags &= ~static_cast<std::uint32_t>(ring::kFdTransfer);

    // Fork events open tuples here exactly as a live leader would.
    if (event.type == ring::EventType::Fork) {
        auto t = static_cast<std::uint32_t>(event.args[0]);
        if (t < core::kMaxTuples) {
            std::uint32_t current =
                cb->num_tuples.load(std::memory_order_acquire);
            while (current <= t &&
                   !cb->num_tuples.compare_exchange_weak(
                       current, t + 1, std::memory_order_acq_rel)) {
            }
            cb->tuples[t].active.store(1, std::memory_order_release);
        }
    }
    return true;
}

std::size_t
Receiver::publishRun(std::uint32_t tuple, ring::Event *events,
                     std::size_t count)
{
    // The batched mirror of the shipper's relaxed shipping: one
    // claim/commit — one head store, one wake — per ring chunk rather
    // than per event. Shadow recycling per claimed slot, exactly like
    // the leader-side coalesced path.
    core::ControlBlock *cb = layout_->controlBlock(region_);
    shmem::ShardedPool pool = layout_->pool(region_);
    ring::RingBuffer ring = layout_->tupleRing(region_, tuple);
    std::uint64_t *shadow = layout_->tupleShadow(region_, tuple);
    const std::uint64_t mask = cb->ring_capacity - 1;
    ring::WaitSpec wait;
    wait.timeout_ns = options_.publish_timeout_ns;

    std::size_t done = 0;
    while (done < count) {
        const std::size_t chunk =
            std::min<std::size_t>(count - done, cb->ring_capacity);
        std::uint64_t seq = 0;
        if (!ring.claim(chunk, &seq, wait)) {
            warn("wire receiver: local ring %u wedged", tuple);
            break;
        }
        for (std::size_t k = 0; k < chunk; ++k) {
            const ring::Event &event = events[done + k];
            std::uint64_t idx = (seq + k) & mask;
            if (shadow[idx] != 0)
                pool.release(shadow[idx]);
            shadow[idx] = event.hasPayload() ? event.payload : 0;
        }
        ring.commit({events + done, chunk});
        done += chunk;
    }
    cb->events_streamed.fetch_add(done, std::memory_order_relaxed);
    return done;
}

void
Receiver::releasePrepared(ring::Event *events, std::size_t count)
{
    shmem::ShardedPool pool = layout_->pool(region_);
    for (std::size_t i = 0; i < count; ++i) {
        if (events[i].hasPayload() && events[i].payload != 0)
            pool.release(events[i].payload);
    }
}

bool
Receiver::applyEvents(const FrameHeader &header,
                      std::vector<std::uint8_t> &body)
{
    const std::uint32_t tuple = header.tuple;
    const std::size_t count = header.count;
    if (body.size() < count * sizeof(ring::Event)) {
        ++stats_.corrupt_frames;
        return false;
    }
    auto *events = reinterpret_cast<ring::Event *>(body.data());
    if (eventsPayloadBytes(events, count) !=
        body.size() - count * sizeof(ring::Event)) {
        ++stats_.corrupt_frames;
        return false;
    }

    // Decide the ack policy on the pristine events: prepareEvent
    // rewrites flags (kFdTransfer is virtualised away) as it goes.
    const bool ack_point = hasAckPoint(events, count);

    // Frames carry a contiguous sequence run, so retransmit overlap is
    // always a prefix: drop already-delivered events, reject holes.
    if (header.seq + count <= next_seq_[tuple]) {
        stats_.duplicates_dropped += count;
        return true; // whole frame already delivered
    }
    if (header.seq > next_seq_[tuple]) {
        warn("wire receiver: tuple %u gap (want %llu, got %llu)", tuple,
             static_cast<unsigned long long>(next_seq_[tuple]),
             static_cast<unsigned long long>(header.seq));
        ++stats_.corrupt_frames;
        return false;
    }
    const std::size_t skip =
        static_cast<std::size_t>(next_seq_[tuple] - header.seq);
    stats_.duplicates_dropped += skip;

    const std::uint8_t *payload_cursor =
        body.data() + count * sizeof(ring::Event);
    for (std::size_t i = 0; i < count; ++i) {
        ring::Event &event = events[i];
        const std::uint8_t *payload = payload_cursor;
        if (event.hasPayload())
            payload_cursor += event.payload_size;
        if (i < skip)
            continue; // duplicate prefix: payload bytes consumed above
        if (!prepareEvent(tuple, event, payload)) {
            // Already-prepared events own local pool chunks; drop them
            // or a retransmit after reconnect would re-allocate and
            // leak them — compounding the exhaustion that failed us.
            releasePrepared(events + skip, i - skip);
            return false;
        }
    }

    const std::size_t fresh = count - skip;
    const std::size_t published =
        publishRun(tuple, events + skip, fresh);
    // Committed slots own their payloads (the shadow releases them on
    // reuse); the unpublished tail must be released here. next_seq_
    // advances only past what landed, so a reconnect retransmits the
    // rest cleanly.
    if (published < fresh)
        releasePrepared(events + skip + published, fresh - published);
    next_seq_[tuple] += published;
    stats_.events += published;
    uncredited_[tuple] += published;
    if (published < fresh)
        return false;

    // Relaxed acking: flush credits at externally-visible events or
    // once enough deliveries accumulated.
    if (ack_point || uncredited_[tuple] >= options_.credit_every)
        sendCredit(tuple);
    return true;
}

bool
Receiver::readFrame()
{
    FrameHeader header = {};
    if (!readFull(socket_fd_, &header, sizeof(header))) {
        dropLink();
        return false;
    }
    if (!headerValid(header)) {
        ++stats_.corrupt_frames;
        dropLink();
        return false;
    }
    std::vector<std::uint8_t> body(header.body_len);
    if (header.body_len > 0 &&
        !readFull(socket_fd_, body.data(), body.size())) {
        dropLink();
        return false;
    }
    if (header.body_crc != bodyChecksum(body.data(), body.size())) {
        ++stats_.corrupt_frames;
        dropLink();
        return false;
    }

    ++stats_.frames;
    switch (static_cast<FrameType>(header.type)) {
      case FrameType::Events:
        if (!applyEvents(header, body)) {
            dropLink();
            return false;
        }
        return true;
      case FrameType::Status:
        // The status RPC reply: a serialized core::StatusReport.
        if (!decodeStatusFrame(header, body.data(), body.size(),
                               &remote_status_)) {
            ++stats_.corrupt_frames;
            dropLink();
            return false;
        }
        seen_status_ = true;
        ++stats_.status_reports;
        return true;
      case FrameType::Bye:
        // Orderly end: flush remaining credits so the shipper retires
        // its retransmit buffer, then close down.
        for (std::uint32_t t = 0; t < core::kMaxTuples; ++t) {
            if (next_seq_[t] > credited_[t])
                sendCredit(t);
        }
        dropLink();
        return false;
      case FrameType::Hello:
      case FrameType::HelloAck:
      case FrameType::Credit:
      default:
        // Nothing the shipper should send mid-stream.
        ++stats_.corrupt_frames;
        dropLink();
        return false;
    }
}

int
Receiver::serveOnce(int timeout_ms)
{
    std::lock_guard<std::mutex> guard(mutex_);
    if (!link_up_.load(std::memory_order_acquire))
        return -1;
    struct pollfd pfd = {socket_fd_, POLLIN, 0};
    int frames = 0;
    for (;;) {
        int n = ::poll(&pfd, 1, frames == 0 ? timeout_ms : 0);
        if (n < 0 && errno == EINTR)
            continue;
        if (n <= 0)
            return frames;
        if (pfd.revents & (POLLERR | POLLNVAL)) {
            dropLink();
            return -1;
        }
        if (!readFrame())
            return -1;
        ++frames;
        if (stopping_.load(std::memory_order_acquire))
            return frames;
    }
}

void
Receiver::serveLoop()
{
    while (!stopping_.load(std::memory_order_acquire)) {
        if (serveOnce(options_.tick_ms) < 0) {
            // Link down: wait for an adopt() from the failover path.
            while (!stopping_.load(std::memory_order_acquire) &&
                   !link_up_.load(std::memory_order_acquire)) {
                sleepNs(1000000);
            }
        }
    }
}

void
Receiver::start()
{
    VARAN_CHECK(!thread_.joinable());
    thread_ = std::thread([this] { serveLoop(); });
}

Status
Receiver::finish()
{
    stopping_.store(true, std::memory_order_release);
    if (thread_.joinable())
        thread_.join();
    std::lock_guard<std::mutex> guard(mutex_);
    if (link_up_.load(std::memory_order_acquire)) {
        FrameHeader bye = makeHeader(FrameType::Bye, 0);
        writeFull(socket_fd_, &bye, sizeof(bye));
        dropLink();
    }
    return Status::ok();
}

Status
Receiver::requestStatus()
{
    std::lock_guard<std::mutex> guard(mutex_);
    if (!link_up_.load(std::memory_order_acquire))
        return Status(Errno{EPIPE});
    FrameHeader request = makeStatusRequest();
    if (!writeFull(socket_fd_, &request, sizeof(request))) {
        dropLink();
        return Status(Errno{EPIPE});
    }
    ++stats_.status_requests;
    return Status::ok();
}

bool
Receiver::remoteStatus(core::StatusReport *out) const
{
    std::lock_guard<std::mutex> guard(mutex_);
    if (!seen_status_)
        return false;
    *out = remote_status_;
    return true;
}

core::StatusReport
Receiver::localStatus() const
{
    core::StatusReport report = core::collectStatus(region_, *layout_);
    std::lock_guard<std::mutex> guard(mutex_);
    report.receiver.active = 1;
    report.receiver.link_up =
        link_up_.load(std::memory_order_acquire) ? 1 : 0;
    report.receiver.frames = stats_.frames;
    report.receiver.events = stats_.events;
    report.receiver.payload_bytes = stats_.payload_bytes;
    report.receiver.duplicates_dropped = stats_.duplicates_dropped;
    report.receiver.corrupt_frames = stats_.corrupt_frames;
    report.receiver.credits_sent = stats_.credits_sent;
    report.receiver.reconnects = stats_.reconnects;
    return report;
}

std::uint64_t
Receiver::nextSeq(std::uint32_t tuple) const
{
    std::lock_guard<std::mutex> guard(mutex_);
    VARAN_CHECK(tuple < core::kMaxTuples);
    return next_seq_[tuple];
}

Receiver::Stats
Receiver::stats() const
{
    std::lock_guard<std::mutex> guard(mutex_);
    return stats_;
}

} // namespace varan::wire
