#include "wire/shipper.h"

#include <cerrno>
#include <cstring>
#include <sys/epoll.h>
#include <sys/socket.h>
#include <sys/uio.h>
#include <unistd.h>

#include "common/clock.h"
#include "common/fd.h"
#include "common/logging.h"
#include "wire/io.h"

namespace varan::wire {

Shipper::Shipper(const shmem::Region *region,
                 const core::EngineLayout *layout, Options options)
    : region_(region), layout_(layout), options_(options)
{
    if (options_.ship_batch == 0)
        options_.ship_batch = 1;
    if (options_.ship_batch > kMaxShipBatch)
        options_.ship_batch = kMaxShipBatch;
}

Shipper::~Shipper()
{
    stopping_.store(true, std::memory_order_release);
    if (thread_.joinable())
        thread_.join();
    for (std::uint32_t t = 0; t < core::kMaxTuples; ++t) {
        if (tuples_[t].tap_slot >= 0) {
            ring::RingBuffer ring = layout_->tupleRing(region_, t);
            ring.detachConsumer(tuples_[t].tap_slot);
            tuples_[t].tap_slot = -1;
        }
    }
}

Status
Shipper::attachTaps()
{
    for (std::uint32_t t = 0; t < core::kMaxTuples; ++t) {
        ring::RingBuffer ring = layout_->tupleRing(region_, t);
        tuples_[t].tap_slot = -1;
        for (int slot = core::kTapConsumerSlot;
             slot < static_cast<int>(ring::kMaxConsumers); ++slot) {
            if (ring.attachConsumerAt(slot)) {
                tuples_[t].tap_slot = slot;
                break;
            }
        }
        if (tuples_[t].tap_slot < 0)
            return Status(Errno{EBUSY});
    }
    return Status::ok();
}

Status
Shipper::sendHello(FrameType type)
{
    core::ControlBlock *cb = layout_->controlBlock(region_);
    HelloBody body = {};
    body.num_variants = cb->num_variants;
    body.ring_capacity = cb->ring_capacity;
    body.max_tuples = core::kMaxTuples;
    body.num_tuples = cb->num_tuples.load(std::memory_order_acquire);
    body.leader_id = cb->leader_id.load(std::memory_order_acquire);
    body.events_streamed =
        cb->events_streamed.load(std::memory_order_relaxed);
    body.pool = layout_->pool(region_).stats();

    FrameHeader header = makeHeader(type, sizeof(body));
    header.body_crc = bodyChecksum(&body, sizeof(body));
    struct iovec iov[2] = {{&header, sizeof(header)}, {&body, sizeof(body)}};
    if (!writevAll(socket_fd_, iov, 2))
        return Status::fromErrno();
    return Status::ok();
}

Status
Shipper::handshake(int socket_fd)
{
    std::lock_guard<std::mutex> guard(mutex_);
    socket_fd_ = socket_fd;

    // A receiver that wedges (stops reading or stops sending) must
    // surface as a link drop, not a thread blocked forever in sendmsg
    // or in the HelloAck read below: bound every transfer in both
    // directions. The retransmit buffer keeps the unacked tail, so a
    // timed-out link is recoverable through reconnect().
    struct timeval io_timeout = {10, 0};
    ::setsockopt(socket_fd_, SOL_SOCKET, SO_SNDTIMEO, &io_timeout,
                 sizeof(io_timeout));
    ::setsockopt(socket_fd_, SOL_SOCKET, SO_RCVTIMEO, &io_timeout,
                 sizeof(io_timeout));

    Status hello = sendHello(FrameType::Hello);
    if (!hello.isOk())
        return hello;

    FrameHeader ack_header = {};
    if (!readFull(socket_fd_, &ack_header, sizeof(ack_header)))
        return Status(Errno{EPIPE});
    if (!headerValid(ack_header) ||
        static_cast<FrameType>(ack_header.type) != FrameType::HelloAck ||
        ack_header.body_len != sizeof(HelloAckBody)) {
        return Status(Errno{EPROTO});
    }
    HelloAckBody ack = {};
    if (!readFull(socket_fd_, &ack, sizeof(ack)))
        return Status(Errno{EPIPE});
    if (ack_header.body_crc != bodyChecksum(&ack, sizeof(ack)) ||
        ack.max_tuples != core::kMaxTuples) {
        return Status(Errno{EPROTO});
    }

    // Adopt the receiver's resume cursors: everything below them has
    // landed and leaves the retransmit buffer.
    for (std::uint32_t t = 0; t < core::kMaxTuples; ++t) {
        if (ack.next_seq[t] > tuples_[t].acked)
            tuples_[t].acked = ack.next_seq[t];
        if (ack.next_seq[t] > tuples_[t].next_seq)
            tuples_[t].next_seq = ack.next_seq[t];
    }
    for (auto it = unacked_.begin(); it != unacked_.end();) {
        if (it->seq + it->count <= tuples_[it->tuple].acked)
            it = unacked_.erase(it);
        else
            ++it;
    }

    loop_.remove(socket_fd_);
    Status added = loop_.add(socket_fd_, EPOLLIN, [this](std::uint32_t) {
        handleCredits();
    });
    if (!added.isOk())
        return added;
    link_up_.store(true, std::memory_order_release);
    return Status::ok();
}

Status
Shipper::reconnect(int socket_fd)
{
    {
        std::lock_guard<std::mutex> guard(mutex_);
        if (socket_fd_ >= 0)
            loop_.remove(socket_fd_);
        ++stats_.reconnects;
    }
    Status status = handshake(socket_fd);
    if (!status.isOk())
        return status;

    // Retransmit the tail the receiver has not confirmed. Frames that
    // partially overlap the resume cursor are sent as-is — the receiver
    // drops the duplicate prefix per event.
    std::lock_guard<std::mutex> guard(mutex_);
    for (const PendingFrame &frame : unacked_) {
        if (!writeFrame(frame)) {
            dropLink();
            return Status(Errno{EPIPE});
        }
        ++stats_.retransmitted_frames;
    }
    return Status::ok();
}

void
Shipper::dropLink()
{
    if (socket_fd_ >= 0)
        loop_.remove(socket_fd_);
    link_up_.store(false, std::memory_order_release);
}

bool
Shipper::writeFrame(const PendingFrame &frame)
{
    struct iovec iov = {
        const_cast<std::uint8_t *>(frame.bytes.data()),
        frame.bytes.size(),
    };
    if (!writevAll(socket_fd_, &iov, 1))
        return false;
    ++stats_.frames;
    stats_.bytes += frame.bytes.size();
    return true;
}

void
Shipper::handleCredits()
{
    // Invoked from loop_.runOnce() inside pumpOnce(), which already
    // holds mutex_ — every loop_ access is serialized through it.
    if (!link_up_.load(std::memory_order_acquire))
        return;
    FrameHeader header = {};
    if (!readFull(socket_fd_, &header, sizeof(header))) {
        dropLink();
        return;
    }
    if (!headerValid(header)) {
        dropLink();
        return;
    }
    switch (static_cast<FrameType>(header.type)) {
      case FrameType::Credit: {
        if (header.body_len !=
            header.count * sizeof(CreditEntry)) {
            dropLink();
            return;
        }
        std::vector<CreditEntry> entries(header.count);
        if (!readFull(socket_fd_, entries.data(), header.body_len)) {
            dropLink();
            return;
        }
        if (header.body_crc !=
            bodyChecksum(entries.data(), header.body_len)) {
            dropLink();
            return;
        }
        for (const CreditEntry &entry : entries) {
            if (entry.tuple >= core::kMaxTuples)
                continue;
            if (entry.delivered > tuples_[entry.tuple].acked)
                tuples_[entry.tuple].acked = entry.delivered;
            ++stats_.credits_received;
        }
        while (!unacked_.empty()) {
            const PendingFrame &front = unacked_.front();
            if (front.seq + front.count <= tuples_[front.tuple].acked)
                unacked_.pop_front();
            else
                break;
        }
        break;
      }
      case FrameType::Status:
        // The status RPC: an empty-body Status frame is a request for
        // the coordinator snapshot; anything else from the receiver on
        // this frame type is a protocol violation.
        if (header.body_len != 0) {
            dropLink();
            return;
        }
        serveStatusRequest();
        break;
      case FrameType::Bye:
        dropLink();
        break;
      default:
        // Unexpected frame from the receiver: protocol violation.
        dropLink();
        break;
    }
}

void
Shipper::fillWireStatus(core::ShipperWireStatus &out, const Stats &stats,
                        bool link_up)
{
    out.active = 1;
    out.link_up = link_up ? 1 : 0;
    out.frames = stats.frames;
    out.events = stats.events;
    out.bytes = stats.bytes;
    out.payload_bytes = stats.payload_bytes;
    out.credits_received = stats.credits_received;
    out.retransmitted_frames = stats.retransmitted_frames;
    out.reconnects = stats.reconnects;
}

void
Shipper::serveStatusRequest()
{
    // Runs under mutex_ (handleCredits is invoked from loop_.runOnce
    // inside pumpOnce), so stats_ and the socket are stable.
    core::StatusReport report = core::collectStatus(region_, *layout_);
    fillWireStatus(report.shipper, stats_, /*link_up=*/true);

    std::uint8_t frame[kStatusFrameBytes];
    encodeStatusFrame(report, frame);
    struct iovec iov = {frame, sizeof(frame)};
    if (!writevAll(socket_fd_, &iov, 1)) {
        dropLink();
        return;
    }
    ++stats_.frames;
    stats_.bytes += sizeof(frame);
    ++stats_.status_requests_served;
}

std::size_t
Shipper::drainTuple(std::uint32_t tuple)
{
    TupleShip &ship = tuples_[tuple];
    if (ship.tap_slot < 0)
        return 0;

    // Credit window: cap the unacknowledged run-ahead. Events stay in
    // the ring, which eventually gates the leader (backpressure).
    const std::uint64_t unacked = ship.next_seq - ship.acked;
    if (unacked >= options_.credit_window)
        return 0;
    std::size_t budget = options_.credit_window - unacked;
    if (budget > options_.ship_batch)
        budget = options_.ship_batch;

    ring::RingBuffer ring = layout_->tupleRing(region_, tuple);
    ring::Event events[kMaxShipBatch];

    ring::WaitSpec nowait;
    nowait.spin_iterations = 0;
    nowait.timeout_ns = 1; // poll
    std::size_t n = ring.peekBatch(ship.tap_slot, events, budget, nowait);
    if (n == 0)
        return 0;

    // Serialize one Events frame: header, event run, payload bytes of
    // every payload-carrying event, in event order. Payloads are copied
    // out of the pool *before* the tap cursor advances, while the
    // gating protocol still pins them.
    shmem::ShardedPool pool = layout_->pool(region_);
    const std::size_t payload_bytes = eventsPayloadBytes(events, n);
    PendingFrame frame;
    frame.tuple = tuple;
    frame.seq = ship.next_seq;
    frame.count = static_cast<std::uint32_t>(n);
    const std::size_t body_len = n * sizeof(ring::Event) + payload_bytes;
    frame.bytes.resize(sizeof(FrameHeader) + body_len);

    auto *body = frame.bytes.data() + sizeof(FrameHeader);
    std::memcpy(body, events, n * sizeof(ring::Event));
    auto *payload_out = body + n * sizeof(ring::Event);
    for (std::size_t i = 0; i < n; ++i) {
        if (!events[i].hasPayload())
            continue;
        const void *payload =
            pool.pointer(events[i].payload, events[i].payload_size);
        std::memcpy(payload_out, payload, events[i].payload_size);
        payload_out += events[i].payload_size;
    }

    FrameHeader header = makeHeader(FrameType::Events,
                                    static_cast<std::uint32_t>(body_len));
    header.tuple = tuple;
    header.seq = frame.seq;
    header.count = frame.count;
    header.body_crc = bodyChecksum(body, body_len);
    std::memcpy(frame.bytes.data(), &header, sizeof(header));

    // The copy is complete: release the ring slots back to the leader.
    ring.advanceBy(ship.tap_slot, n);
    ship.next_seq += n;
    stats_.events += n;
    stats_.payload_bytes += payload_bytes;

    if (link_up_.load(std::memory_order_acquire) && !writeFrame(frame))
        dropLink();
    // Keep the frame until the receiver credits past it, whether or not
    // the write just succeeded — a reconnect retransmits from here.
    unacked_.push_back(std::move(frame));
    return n;
}

std::size_t
Shipper::pumpOnce()
{
    std::lock_guard<std::mutex> guard(mutex_);
    // Deliver any pending credit frames first so the window reopens.
    loop_.runOnce(0);
    core::ControlBlock *cb = layout_->controlBlock(region_);
    std::uint32_t tuples = cb->num_tuples.load(std::memory_order_acquire);
    std::size_t shipped = 0;
    for (std::uint32_t t = 0; t < tuples && t < core::kMaxTuples; ++t)
        shipped += drainTuple(t);
    return shipped;
}

bool
Shipper::ringBacklog()
{
    std::lock_guard<std::mutex> guard(mutex_);
    for (std::uint32_t t = 0; t < core::kMaxTuples; ++t) {
        if (tuples_[t].tap_slot < 0)
            continue;
        ring::RingBuffer ring = layout_->tupleRing(region_, t);
        if (ring.lag(tuples_[t].tap_slot) > 0)
            return true;
    }
    return false;
}

void
Shipper::drainRemaining()
{
    // Ship everything still in the rings. A closed credit window makes
    // pumpOnce() yield zero while backlog remains — then the blocker is
    // an in-flight Credit frame, so wait for it (bounded: a dead or
    // wedged receiver must not hold shutdown hostage).
    const std::uint64_t deadline = monotonicNs() + 10000000000ULL; // 10 s
    for (;;) {
        if (pumpOnce() > 0)
            continue;
        if (!link_up_.load(std::memory_order_acquire))
            break;
        if (!ringBacklog())
            break;
        if (monotonicNs() >= deadline) {
            warn("wire shipper: shutdown with unshipped backlog "
                 "(credit window closed, receiver silent)");
            break;
        }
        std::lock_guard<std::mutex> guard(mutex_);
        loop_.runOnce(options_.tick_ms); // wait for credits
    }
}

void
Shipper::pumpLoop()
{
    while (!stopping_.load(std::memory_order_acquire)) {
        if (pumpOnce() == 0) {
            // Idle: wait for credits or the next tick. The lock is
            // held through the wait, like every other loop_ access —
            // bounded by tick_ms, so handshakes and stats reads stall
            // at most one tick.
            std::lock_guard<std::mutex> guard(mutex_);
            loop_.runOnce(options_.tick_ms);
        }
    }
    // Final sweep: ship whatever the leader published before stop.
    drainRemaining();
}

void
Shipper::start()
{
    VARAN_CHECK(!thread_.joinable());
    thread_ = std::thread([this] { pumpLoop(); });
}

Status
Shipper::finish()
{
    stopping_.store(true, std::memory_order_release);
    if (thread_.joinable())
        thread_.join();
    drainRemaining();
    std::lock_guard<std::mutex> guard(mutex_);
    if (link_up_.load(std::memory_order_acquire)) {
        FrameHeader bye = makeHeader(FrameType::Bye, 0);
        struct iovec iov = {&bye, sizeof(bye)};
        writevAll(socket_fd_, &iov, 1);
    }
    for (std::uint32_t t = 0; t < core::kMaxTuples; ++t) {
        if (tuples_[t].tap_slot >= 0) {
            ring::RingBuffer ring = layout_->tupleRing(region_, t);
            ring.detachConsumer(tuples_[t].tap_slot);
            tuples_[t].tap_slot = -1;
        }
    }
    return Status::ok();
}

Shipper::Stats
Shipper::stats() const
{
    std::lock_guard<std::mutex> guard(mutex_);
    return stats_;
}

} // namespace varan::wire
