#include "wire/shipper.h"

#include <algorithm>
#include <cerrno>
#include <cstring>
#include <sys/epoll.h>
#include <sys/socket.h>
#include <sys/uio.h>
#include <unistd.h>

#include "common/clock.h"
#include "common/fd.h"
#include "common/logging.h"
#include "wire/io.h"

namespace varan::wire {

Shipper::Shipper(const shmem::Region *region,
                 const core::EngineLayout *layout, Options options)
    : region_(region), layout_(layout), options_(options),
      tuning_(&layout->controlBlock(region)->tuning),
      retain_explicit_(options.retain_limit != 0)
{
    if (options_.ship_batch == 0)
        options_.ship_batch = 1;
    if (options_.ship_batch > kMaxShipBatch)
        options_.ship_batch = kMaxShipBatch;
    if (options_.credit_window == 0)
        options_.credit_window = 1;
    if (options_.retain_limit != 0 &&
        options_.retain_limit < options_.credit_window)
        options_.retain_limit = options_.credit_window;
    // Seed the live knobs (first-seeder-wins): a shipper constructed
    // after a retune — a promoted shipper on a receiver node — finds
    // the seeded bit set and adopts the live value instead of
    // clobbering it with its own construction options.
    core::seedKnob(*tuning_, core::Knob::ShipBatch, options_.ship_batch);
    core::seedKnob(*tuning_, core::Knob::CreditWindow,
                   options_.credit_window);
}

std::size_t
Shipper::liveShipBatch() const
{
    std::uint64_t batch = core::liveKnob(*tuning_, core::Knob::ShipBatch);
    if (batch > kMaxShipBatch)
        batch = kMaxShipBatch;
    if (batch == 0)
        batch = 1;
    return static_cast<std::size_t>(batch);
}

std::size_t
Shipper::liveCreditWindow() const
{
    std::uint64_t window =
        core::liveKnob(*tuning_, core::Knob::CreditWindow);
    if (window == 0)
        window = 1;
    return static_cast<std::size_t>(window);
}

std::size_t
Shipper::liveRetainLimit() const
{
    // An explicit retain_limit is an operator decision and stays put;
    // the default tracks the live credit window so retuning the window
    // never turns healthy peers into stragglers.
    if (retain_explicit_)
        return options_.retain_limit;
    return 4 * liveCreditWindow();
}

Shipper::~Shipper()
{
    stopping_.store(true, std::memory_order_release);
    if (thread_.joinable())
        thread_.join();
    for (std::uint32_t t = 0; t < core::kMaxTuples; ++t) {
        if (tuples_[t].tap_slot >= 0) {
            ring::RingBuffer ring = layout_->tupleRing(region_, t);
            ring.detachConsumer(tuples_[t].tap_slot);
            tuples_[t].tap_slot = -1;
        }
    }
}

Status
Shipper::attachTaps()
{
    for (std::uint32_t t = 0; t < core::kMaxTuples; ++t) {
        ring::RingBuffer ring = layout_->tupleRing(region_, t);
        tuples_[t].tap_slot = -1;
        for (int slot = core::kTapConsumerSlot;
             slot < static_cast<int>(ring::kMaxConsumers); ++slot) {
            if (ring.attachConsumerAt(slot)) {
                tuples_[t].tap_slot = slot;
                break;
            }
        }
        if (tuples_[t].tap_slot < 0)
            return Status(Errno{EBUSY});
        // The tap attaches at the current ring head. On a fresh engine
        // (pre-spawn hook) that is sequence 0; on a promoted engine it
        // is the stream position the receiver materialized — the
        // shipper owns only the suffix from here, which becomes its
        // cursor floor for peer admission.
        const std::uint64_t base =
            ring.headSeq() - ring.lag(tuples_[t].tap_slot);
        tuples_[t].next_seq = base;
        tuples_[t].floor_seq = base;
    }
    return Status::ok();
}

Status
Shipper::sendHello(int socket_fd)
{
    core::ControlBlock *cb = layout_->controlBlock(region_);
    HelloBody body = {};
    body.num_variants = cb->num_variants;
    body.ring_capacity = cb->ring_capacity;
    body.max_tuples = core::kMaxTuples;
    body.num_tuples = cb->num_tuples.load(std::memory_order_acquire);
    body.leader_id = cb->leader_id.load(std::memory_order_acquire);
    body.engine_epoch = cb->epoch.load(std::memory_order_acquire);
    body.stream_generation =
        cb->stream_generation.load(std::memory_order_acquire);
    body.events_streamed =
        cb->events_streamed.load(std::memory_order_relaxed);
    body.pool = layout_->pool(region_).stats();

    FrameHeader header = makeHeader(FrameType::Hello, sizeof(body));
    header.body_crc = bodyChecksum(&body, sizeof(body));
    struct iovec iov[2] = {{&header, sizeof(header)}, {&body, sizeof(body)}};
    if (!writevAll(socket_fd, iov, 2))
        return Status::fromErrno();
    return Status::ok();
}

Status
Shipper::addPeer(int socket_fd)
{
    // The handshake is the one blocking exchange on this socket: a
    // receiver that wedges mid-handshake must surface as a failed
    // adopt, never a hung thread. Steady-state sends are non-blocking
    // (queueBytes), so these timeouts only govern the handshake and
    // the credit reads. The blocking I/O runs *before* mutex_ is
    // taken: a wedged connecting peer must not freeze shipping and
    // credit handling for the healthy peers.
    struct timeval io_timeout = {10, 0};
    ::setsockopt(socket_fd, SOL_SOCKET, SO_SNDTIMEO, &io_timeout,
                 sizeof(io_timeout));
    ::setsockopt(socket_fd, SOL_SOCKET, SO_RCVTIMEO, &io_timeout,
                 sizeof(io_timeout));

    Status hello = sendHello(socket_fd);
    if (!hello.isOk())
        return hello;

    FrameHeader ack_header = {};
    if (!readFull(socket_fd, &ack_header, sizeof(ack_header)))
        return Status(Errno{EPIPE});
    if (!headerValid(ack_header))
        return Status(Errno{EPROTO});
    if (static_cast<FrameType>(ack_header.type) == FrameType::Error &&
        ack_header.body_len == sizeof(ErrorBody)) {
        // The receiver refused the link and said why (stale epoch or
        // generation, usually a resurrected pre-failover leader).
        std::uint8_t body[sizeof(ErrorBody)];
        ErrorBody error = {};
        if (readFull(socket_fd, body, sizeof(body)) &&
            decodeErrorFrame(ack_header, body, sizeof(body), &error)) {
            std::lock_guard<std::mutex> guard(mutex_);
            last_error_ = error;
            ++stats_.errors_received;
            warn("wire shipper: peer refused handshake (code %u, peer "
                 "epoch %u gen %u, ours %u/%u)",
                 error.code, error.local_epoch, error.local_generation,
                 error.peer_epoch, error.peer_generation);
        }
        return Status(Errno{EPROTO});
    }
    if (static_cast<FrameType>(ack_header.type) != FrameType::HelloAck ||
        ack_header.body_len != sizeof(HelloAckBody)) {
        return Status(Errno{EPROTO});
    }
    HelloAckBody ack = {};
    if (!readFull(socket_fd, &ack, sizeof(ack)))
        return Status(Errno{EPIPE});
    if (ack_header.body_crc != bodyChecksum(&ack, sizeof(ack)) ||
        ack.max_tuples != core::kMaxTuples) {
        return Status(Errno{EPROTO});
    }

    // Handshake I/O done; bind (or reject) the session under the lock.
    // Admission is checked here, where floor/drain cursors are stable.
    std::lock_guard<std::mutex> guard(mutex_);
    core::ControlBlock *cb = layout_->controlBlock(region_);
    const std::uint32_t generation =
        cb->stream_generation.load(std::memory_order_acquire);
    const std::uint32_t epoch = cb->epoch.load(std::memory_order_acquire);
    if (ack.stream_generation > generation ||
        (ack.stream_generation == generation &&
         ack.engine_epoch > epoch)) {
        // The receiver has reconciled against a newer stream than this
        // shipper publishes: *we* are the stale side. (The receiver
        // normally rejects first; this guards a racing promotion.)
        warn("wire shipper: receiver is ahead (gen %u epoch %u vs our "
             "%u/%u) — this shipper is stale",
             ack.stream_generation, ack.engine_epoch, generation, epoch);
        return Status(Errno{EPROTO});
    }

    // Admission: this shipper can only serve the suffix past its
    // cursor floor (a promoted shipper never saw the earlier prefix,
    // and retired frames are gone). Anything else needs a resync this
    // stream cannot provide — tell the peer in a decodable way.
    for (std::uint32_t t = 0; t < core::kMaxTuples; ++t) {
        WireError code = WireError::None;
        if (ack.next_seq[t] < tuples_[t].floor_seq)
            code = WireError::PeerTooFarBehind;
        else if (ack.next_seq[t] > tuples_[t].next_seq)
            code = WireError::CursorAheadOfStream;
        if (code == WireError::None)
            continue;
        ErrorBody error = {};
        error.code = static_cast<std::uint32_t>(code);
        error.local_epoch = epoch;
        error.local_generation = generation;
        error.peer_epoch = ack.engine_epoch;
        error.peer_generation = ack.stream_generation;
        error.detail = code == WireError::PeerTooFarBehind
                           ? tuples_[t].floor_seq
                           : tuples_[t].next_seq;
        std::uint8_t frame[kErrorFrameBytes];
        encodeErrorFrame(error, frame);
        writeFull(socket_fd, frame, sizeof(frame));
        ++stats_.errors_sent;
        warn("wire shipper: rejecting peer %#llx on tuple %u (code %u: "
             "cursor %llu, floor %llu, head %llu)",
             static_cast<unsigned long long>(ack.receiver_id), t,
             error.code,
             static_cast<unsigned long long>(ack.next_seq[t]),
             static_cast<unsigned long long>(tuples_[t].floor_seq),
             static_cast<unsigned long long>(tuples_[t].next_seq));
        return Status(Errno{EPROTO});
    }

    // Bind or resume the session keyed by the receiver's identity.
    PeerSession *peer = nullptr;
    for (auto &candidate : peers_) {
        if (candidate->receiver_id == ack.receiver_id) {
            peer = candidate.get();
            break;
        }
    }
    const bool resumed = peer != nullptr;
    if (!peer) {
        peers_.push_back(std::make_unique<PeerSession>());
        peer = peers_.back().get();
        peer->receiver_id = ack.receiver_id;
    } else {
        if (peer->socket_fd >= 0)
            loop_.remove(peer->socket_fd);
        ++stats_.reconnects;
        peer->outbox.clear();
        peer->outbox_head = 0;
    }
    peer->socket_fd = socket_fd;
    for (std::uint32_t t = 0; t < core::kMaxTuples; ++t) {
        if (ack.next_seq[t] > peer->acked[t])
            peer->acked[t] = ack.next_seq[t];
        peer->sent[t] = ack.next_seq[t];
    }

    Status added = loop_.add(socket_fd, EPOLLIN, [this, socket_fd](
                                                    std::uint32_t) {
        handlePeerInput(socket_fd);
    });
    if (!added.isOk())
        return added;
    peer->link_up = true;
    refreshLinkUp();
    retireAcked();

    // Retransmit the tail the receiver has not confirmed. Frames that
    // partially overlap the resume cursor are sent as-is — the
    // receiver drops the duplicate prefix per event.
    const std::uint64_t frames_before = stats_.frames;
    sendBacklog(*peer);
    if (resumed)
        stats_.retransmitted_frames += stats_.frames - frames_before;
    return Status::ok();
}

Status
Shipper::reconnect(int socket_fd)
{
    return addPeer(socket_fd);
}

void
Shipper::dropPeerLink(PeerSession &peer)
{
    if (peer.socket_fd >= 0)
        loop_.remove(peer.socket_fd);
    peer.link_up = false;
    refreshLinkUp();
}

void
Shipper::refreshLinkUp()
{
    bool any = false;
    for (const auto &peer : peers_)
        any = any || peer->link_up;
    link_up_.store(any, std::memory_order_release);
}

Shipper::PeerSession *
Shipper::peerByFd(int fd)
{
    for (auto &peer : peers_) {
        if (peer->socket_fd == fd && peer->link_up)
            return peer.get();
    }
    return nullptr;
}

std::uint64_t
Shipper::fastestAcked(std::uint32_t tuple) const
{
    // The drain gate: as long as one live peer keeps crediting, the
    // rings keep draining — a stalled peer buffers (and is eventually
    // evicted) instead of gating its siblings or the leader. Only
    // *live* sessions gate: a fast peer that died must not keep the
    // drain racing ahead of the surviving slower peers (which would
    // grow the buffer until the healthy peers read as stragglers).
    // With no live session at all, fall back to every session's
    // cursor: events confirmed before a link drop stay confirmed, so
    // a sole disconnected peer still drains up to acked + window —
    // the reconnect-and-retransmit window.
    std::uint64_t fastest = tuples_[tuple].floor_seq;
    bool any_live = false;
    for (const auto &peer : peers_) {
        if (!peer->link_up)
            continue;
        any_live = true;
        if (peer->acked[tuple] > fastest)
            fastest = peer->acked[tuple];
    }
    if (!any_live) {
        for (const auto &peer : peers_) {
            if (peer->acked[tuple] > fastest)
                fastest = peer->acked[tuple];
        }
    }
    return fastest;
}

void
Shipper::flushOutbox(PeerSession &peer)
{
    while (peer.outbox_head < peer.outbox.size()) {
        ssize_t n = ::send(peer.socket_fd,
                           peer.outbox.data() + peer.outbox_head,
                           peer.outbox.size() - peer.outbox_head,
                           MSG_NOSIGNAL | MSG_DONTWAIT);
        if (n < 0) {
            if (errno == EINTR)
                continue;
            if (errno == EAGAIN || errno == EWOULDBLOCK)
                return;
            dropPeerLink(peer);
            return;
        }
        peer.outbox_head += static_cast<std::size_t>(n);
    }
    peer.outbox.clear();
    peer.outbox_head = 0;
}

bool
Shipper::queueBytes(PeerSession &peer, const std::uint8_t *data,
                    std::size_t len)
{
    // Never block the pump on one peer's socket: try the kernel buffer
    // first, spill the remainder to the session outbox. A frame is
    // only *started* while the outbox is under its cap, so the cap
    // bounds memory without ever tearing a frame mid-stream.
    if (!peer.outbox.empty()) {
        flushOutbox(peer);
        if (!peer.link_up)
            return true; // dropped; retransmit covers it on reconnect
        if (!peer.outbox.empty()) {
            if (peer.outbox.size() - peer.outbox_head + len >
                options_.outbox_limit) {
                return false;
            }
            peer.outbox.insert(peer.outbox.end(), data, data + len);
            return true;
        }
    }
    std::size_t written = 0;
    while (written < len) {
        ssize_t n = ::send(peer.socket_fd, data + written, len - written,
                           MSG_NOSIGNAL | MSG_DONTWAIT);
        if (n < 0) {
            if (errno == EINTR)
                continue;
            if (errno == EAGAIN || errno == EWOULDBLOCK) {
                peer.outbox.assign(data + written, data + len);
                peer.outbox_head = 0;
                return true;
            }
            dropPeerLink(peer);
            return true;
        }
        written += static_cast<std::size_t>(n);
    }
    return true;
}

void
Shipper::sendBacklog(PeerSession &peer)
{
    if (!peer.link_up)
        return;
    flushOutbox(peer);
    const std::size_t credit_window = liveCreditWindow();
    for (const PendingFrame &frame : unacked_) {
        if (!peer.link_up)
            return;
        const std::uint32_t t = frame.tuple;
        const std::uint64_t end = frame.seq + frame.count;
        if (end <= peer.acked[t])
            continue; // the receiver already holds it
        if (frame.seq > peer.sent[t])
            continue; // an earlier frame was held back: keep order
        if (end <= peer.sent[t])
            continue; // already on the wire
        if (end > peer.acked[t] + credit_window)
            continue; // this peer's window is closed
        if (!queueBytes(peer, frame.bytes.data(), frame.bytes.size()))
            return; // outbox cap hit: retry next pass
        peer.sent[t] = end;
        ++stats_.frames;
        stats_.bytes += frame.bytes.size();
    }
}

void
Shipper::fanOut()
{
    for (auto &peer : peers_)
        sendBacklog(*peer);
}

void
Shipper::retireAcked()
{
    // A frame leaves the retransmit buffer once the *slowest*
    // registered session has credited past it (sessions awaiting
    // reconnect still count: their tail must stay retransmittable
    // until eviction gives up on them).
    while (!unacked_.empty()) {
        const PendingFrame &front = unacked_.front();
        std::uint64_t slowest = tuples_[front.tuple].next_seq;
        for (const auto &peer : peers_) {
            if (peer->acked[front.tuple] < slowest)
                slowest = peer->acked[front.tuple];
        }
        if (peers_.empty() || front.seq + front.count > slowest)
            break;
        tuples_[front.tuple].floor_seq = front.seq + front.count;
        unacked_.pop_front();
    }
}

void
Shipper::evictStragglers()
{
    const std::size_t retain_limit = liveRetainLimit();
    for (std::size_t i = 0; i < peers_.size();) {
        PeerSession &peer = *peers_[i];
        bool evict = false;
        for (std::uint32_t t = 0; t < core::kMaxTuples && !evict; ++t) {
            if (tuples_[t].next_seq - peer.acked[t] > retain_limit) {
                evict = true;
            }
        }
        if (!evict) {
            ++i;
            continue;
        }
        warn("wire shipper: evicting peer %#llx (%s, > %zu events "
             "behind) — it must resync from a fresh stream",
             static_cast<unsigned long long>(peer.receiver_id),
             peer.link_up ? "stalled" : "link down", retain_limit);
        dropPeerLink(peer);
        peers_.erase(peers_.begin() + static_cast<std::ptrdiff_t>(i));
        ++stats_.peers_evicted;
    }
    retireAcked();
}

void
Shipper::handlePeerInput(int fd)
{
    // Invoked from loop_.runOnce() inside pumpOnce(), which already
    // holds mutex_ — every loop_ access is serialized through it.
    PeerSession *peer = peerByFd(fd);
    if (!peer)
        return;
    FrameHeader header = {};
    if (!readFull(fd, &header, sizeof(header)) || !headerValid(header)) {
        dropPeerLink(*peer);
        return;
    }
    switch (static_cast<FrameType>(header.type)) {
      case FrameType::Credit:
        handleCredits(*peer, header);
        break;
      case FrameType::Status:
        // The status RPC: an empty-body Status frame is a request for
        // the coordinator snapshot; anything else from the receiver on
        // this frame type is a protocol violation.
        if (header.body_len != 0) {
            dropPeerLink(*peer);
            return;
        }
        serveStatusRequest(*peer);
        break;
      case FrameType::Error: {
        ErrorBody error = {};
        if (header.body_len == sizeof(error) &&
            readFull(fd, &error, sizeof(error)) &&
            header.body_crc == bodyChecksum(&error, sizeof(error))) {
            last_error_ = error;
            ++stats_.errors_received;
            warn("wire shipper: peer %#llx reported error %u",
                 static_cast<unsigned long long>(peer->receiver_id),
                 error.code);
        }
        dropPeerLink(*peer);
        break;
      }
      case FrameType::Divergence: {
        // A remote follower diverged: relay its ledger records into the
        // leader's ledger, tagged with the sending receiver, so the
        // coordinator's on_divergence_record hook fires fleet-wide.
        std::uint8_t body[kDivergenceFrameMaxRecords *
                          sizeof(trace::DivergenceRecord)];
        trace::DivergenceRecord records[kDivergenceFrameMaxRecords];
        if (header.body_len > sizeof(body) ||
            !readFull(fd, body, header.body_len)) {
            dropPeerLink(*peer);
            return;
        }
        const std::size_t n = decodeDivergenceFrame(
            header, body, header.body_len, records,
            kDivergenceFrameMaxRecords);
        if (n == SIZE_MAX) {
            dropPeerLink(*peer);
            return;
        }
        core::ControlBlock *cb = layout_->controlBlock(region_);
        for (std::size_t i = 0; i < n; ++i) {
            records[i].origin = 1;
            records[i].origin_id = peer->receiver_id;
            trace::ledgerAppend(cb->trace, records[i]);
        }
        stats_.divergence_records += n;
        break;
      }
      case FrameType::Bye:
        dropPeerLink(*peer);
        break;
      case FrameType::Lease:
      case FrameType::Vote:
      case FrameType::Fence:
        // Quorum traffic rides dedicated receiver<->receiver links
        // (quorum/lease.h), never a data session: a peer mixing the
        // planes is confused enough to drop.
        warn("wire shipper: peer %#llx sent quorum frame type %u on a "
             "data session",
             static_cast<unsigned long long>(peer->receiver_id),
             header.type);
        dropPeerLink(*peer);
        break;
      default:
        // Unexpected frame from the receiver: protocol violation.
        dropPeerLink(*peer);
        break;
    }
}

void
Shipper::handleCredits(PeerSession &peer, const FrameHeader &header)
{
    if (header.body_len != header.count * sizeof(CreditEntry)) {
        dropPeerLink(peer);
        return;
    }
    std::vector<CreditEntry> entries(header.count);
    if (!readFull(peer.socket_fd, entries.data(), header.body_len)) {
        dropPeerLink(peer);
        return;
    }
    if (header.body_crc != bodyChecksum(entries.data(), header.body_len)) {
        dropPeerLink(peer);
        return;
    }
    for (const CreditEntry &entry : entries) {
        if (entry.tuple >= core::kMaxTuples)
            continue;
        if (entry.delivered > peer.acked[entry.tuple])
            peer.acked[entry.tuple] = entry.delivered;
        ++stats_.credits_received;
    }
    retireAcked();
}

void
Shipper::fillWireStatus(core::ShipperWireStatus &out, const Stats &stats,
                        bool link_up)
{
    out.active = 1;
    out.link_up = link_up ? 1 : 0;
    out.peers = stats.peers;
    out.peers_evicted = stats.peers_evicted;
    out.frames = stats.frames;
    out.events = stats.events;
    out.bytes = stats.bytes;
    out.payload_bytes = stats.payload_bytes;
    out.credits_received = stats.credits_received;
    out.retransmitted_frames = stats.retransmitted_frames;
    out.reconnects = stats.reconnects;
}

void
Shipper::serveStatusRequest(PeerSession &peer)
{
    // Runs under mutex_ (handlePeerInput is invoked from loop_.runOnce
    // inside pumpOnce), so stats_ and the session are stable.
    core::StatusReport report = core::collectStatus(region_, *layout_);
    Stats snapshot = stats_;
    snapshot.peers = static_cast<std::uint32_t>(peers_.size());
    fillWireStatus(report.shipper, snapshot,
                   link_up_.load(std::memory_order_acquire));

    std::uint8_t frame[kStatusFrameBytes];
    encodeStatusFrame(report, frame);
    if (!queueBytes(peer, frame, sizeof(frame)))
        return; // outbox cap hit: the receiver will re-request
    ++stats_.frames;
    stats_.bytes += sizeof(frame);
    ++stats_.status_requests_served;
}

std::size_t
Shipper::drainTuple(std::uint32_t tuple)
{
    TupleShip &ship = tuples_[tuple];
    if (ship.tap_slot < 0)
        return 0;

    ring::RingBuffer ring = layout_->tupleRing(region_, tuple);
    if (ring.lag(ship.tap_slot) == 0)
        return 0;
    ++stats_.drain_passes;

    // Credit window against the *fastest* peer: the drain (and with it
    // the leader, through ring backpressure) is only gated when every
    // peer has stopped crediting. Slower peers are served from the
    // retransmit buffer. Both the window and the batch size are live
    // `Tuning` knobs, re-read here — at the batch boundary — so a
    // retune applies to the very next frame.
    core::ControlBlock *cb = layout_->controlBlock(region_);
    const std::size_t credit_window = liveCreditWindow();
    const std::uint64_t unacked = ship.next_seq - fastestAcked(tuple);
    if (unacked >= credit_window) {
        ++stats_.credit_stalls;
        if (trace::enabled(cb->trace) && ship.stall_since_ns == 0)
            ship.stall_since_ns = monotonicNs();
        return 0;
    }
    if (ship.stall_since_ns != 0) {
        // The window reopened: the whole closed span is one sample.
        const std::uint64_t now = monotonicNs();
        if (now > ship.stall_since_ns) {
            trace::histogramRecord(cb->trace.credit_stall,
                                   now - ship.stall_since_ns);
        }
        ship.stall_since_ns = 0;
    }
    std::size_t budget = credit_window - unacked;
    const std::size_t ship_batch = liveShipBatch();
    if (budget > ship_batch)
        budget = ship_batch;

    ring::Event events[kMaxShipBatch];

    ring::WaitSpec nowait;
    nowait.spin_iterations = 0;
    nowait.timeout_ns = 1; // poll
    std::size_t n = ring.peekBatch(ship.tap_slot, events, budget, nowait);
    if (n == 0)
        return 0;

    // Serialize one Events frame: header, event run, payload bytes of
    // every payload-carrying event, in event order. Payloads are copied
    // out of the pool *before* the tap cursor advances, while the
    // gating protocol still pins them. The frame is serialized once
    // and fanned out to every peer from the retransmit buffer.
    shmem::ShardedPool pool = layout_->pool(region_);
    const std::size_t payload_bytes = eventsPayloadBytes(events, n);
    PendingFrame frame;
    frame.tuple = tuple;
    frame.seq = ship.next_seq;
    frame.count = static_cast<std::uint32_t>(n);
    const std::size_t body_len = n * sizeof(ring::Event) + payload_bytes;
    frame.bytes.resize(sizeof(FrameHeader) + body_len);

    auto *body = frame.bytes.data() + sizeof(FrameHeader);
    std::memcpy(body, events, n * sizeof(ring::Event));
    auto *payload_out = body + n * sizeof(ring::Event);
    for (std::size_t i = 0; i < n; ++i) {
        if (!events[i].hasPayload())
            continue;
        const void *payload =
            pool.pointer(events[i].payload, events[i].payload_size);
        std::memcpy(payload_out, payload, events[i].payload_size);
        payload_out += events[i].payload_size;
    }

    FrameHeader header = makeHeader(FrameType::Events,
                                    static_cast<std::uint32_t>(body_len));
    header.tuple = tuple;
    header.seq = frame.seq;
    header.count = frame.count;
    header.body_crc = bodyChecksum(body, body_len);
    std::memcpy(frame.bytes.data(), &header, sizeof(header));

    // The copy is complete: release the ring slots back to the leader.
    ring.advanceBy(ship.tap_slot, n);
    ship.next_seq += n;
    stats_.events += n;
    stats_.payload_bytes += payload_bytes;

    if (trace::enabled(cb->trace)) {
        trace::stamp(cb->trace, trace::Stage::ShipperDrain, 0,
                     static_cast<std::uint8_t>(tuple),
                     static_cast<std::uint32_t>(n), monotonicNs(),
                     frame.seq, payload_bytes);
    }

    unacked_.push_back(std::move(frame));
    return n;
}

std::size_t
Shipper::pumpOnce()
{
    std::lock_guard<std::mutex> guard(mutex_);
    // Deliver any pending credit frames first so the windows reopen.
    loop_.runOnce(0);
    core::ControlBlock *cb = layout_->controlBlock(region_);
    std::uint32_t tuples = cb->num_tuples.load(std::memory_order_acquire);
    std::size_t drained = 0;
    for (std::uint32_t t = 0; t < tuples && t < core::kMaxTuples; ++t)
        drained += drainTuple(t);
    fanOut();
    evictStragglers();
    maybePushStatus();
    return drained;
}

void
Shipper::maybePushStatus()
{
    // Runs under mutex_ (from pumpOnce), like serveStatusRequest.
    if (options_.status_push_ns == 0 || peers_.empty())
        return;
    const std::uint64_t now = monotonicNs();
    if (now - last_status_push_ns_ < options_.status_push_ns)
        return;
    last_status_push_ns_ = now;

    core::StatusReport report = core::collectStatus(region_, *layout_);
    Stats snapshot = stats_;
    snapshot.peers = static_cast<std::uint32_t>(peers_.size());
    fillWireStatus(report.shipper, snapshot,
                   link_up_.load(std::memory_order_acquire));
    std::uint8_t frame[kStatusFrameBytes];
    encodeStatusFrame(report, frame);
    for (auto &peer : peers_) {
        if (!peer->link_up)
            continue;
        if (!queueBytes(*peer, frame, sizeof(frame)))
            continue; // outbox cap hit: the next interval retries
        ++stats_.frames;
        stats_.bytes += sizeof(frame);
    }
    ++stats_.status_pushes;
}

bool
Shipper::ringBacklog()
{
    std::lock_guard<std::mutex> guard(mutex_);
    for (std::uint32_t t = 0; t < core::kMaxTuples; ++t) {
        if (tuples_[t].tap_slot < 0)
            continue;
        ring::RingBuffer ring = layout_->tupleRing(region_, t);
        if (ring.lag(tuples_[t].tap_slot) > 0)
            return true;
    }
    return false;
}

bool
Shipper::unsentBacklog()
{
    // Any live peer with bytes parked in its outbox, or buffered
    // frames its send cursor has not covered yet? The shutdown tail
    // counts as delivered only once it reached the kernel for every
    // peer that is still reachable.
    std::lock_guard<std::mutex> guard(mutex_);
    for (const auto &peer : peers_) {
        if (!peer->link_up)
            continue;
        if (peer->outbox.size() > peer->outbox_head)
            return true;
        for (std::uint32_t t = 0; t < core::kMaxTuples; ++t) {
            // acked can outrun sent (a resumed session credits frames
            // this incarnation never wrote): delivered either way.
            const std::uint64_t covered =
                std::max(peer->sent[t], peer->acked[t]);
            if (covered < tuples_[t].next_seq)
                return true;
        }
    }
    return false;
}

void
Shipper::drainRemaining()
{
    // Ship everything still in the rings *and* everything drained but
    // not yet on the wire (closed credit window, full socket buffer).
    // pumpOnce() yields zero while such backlog remains — then the
    // blocker is an in-flight Credit frame or kernel buffer space, so
    // wait for it (bounded: a dead or wedged receiver must not hold
    // shutdown hostage).
    const std::uint64_t deadline = monotonicNs() + 10000000000ULL; // 10 s
    for (;;) {
        if (pumpOnce() > 0)
            continue;
        if (!link_up_.load(std::memory_order_acquire))
            break;
        if (!ringBacklog() && !unsentBacklog())
            break;
        if (monotonicNs() >= deadline) {
            warn("wire shipper: shutdown with undelivered backlog "
                 "(credit window closed or receiver not reading)");
            break;
        }
        std::lock_guard<std::mutex> guard(mutex_);
        loop_.runOnce(options_.tick_ms); // wait for credits
    }
}

void
Shipper::pumpLoop()
{
    while (!stopping_.load(std::memory_order_acquire)) {
        if (pumpOnce() == 0) {
            // Idle: wait for credits or the next tick. The lock is
            // held through the wait, like every other loop_ access —
            // bounded by tick_ms, so handshakes and stats reads stall
            // at most one tick.
            std::lock_guard<std::mutex> guard(mutex_);
            loop_.runOnce(options_.tick_ms);
        }
    }
    // Final sweep: ship whatever the leader published before stop.
    drainRemaining();
}

void
Shipper::start()
{
    VARAN_CHECK(!thread_.joinable());
    thread_ = std::thread([this] { pumpLoop(); });
}

Status
Shipper::finish()
{
    stopping_.store(true, std::memory_order_release);
    if (thread_.joinable())
        thread_.join();
    drainRemaining();
    std::lock_guard<std::mutex> guard(mutex_);
    for (auto &peer : peers_) {
        if (!peer->link_up)
            continue;
        FrameHeader bye = makeHeader(FrameType::Bye, 0);
        queueBytes(*peer, reinterpret_cast<const std::uint8_t *>(&bye),
                   sizeof(bye));
        flushOutbox(*peer);
    }
    for (std::uint32_t t = 0; t < core::kMaxTuples; ++t) {
        if (tuples_[t].tap_slot >= 0) {
            ring::RingBuffer ring = layout_->tupleRing(region_, t);
            ring.detachConsumer(tuples_[t].tap_slot);
            tuples_[t].tap_slot = -1;
        }
    }
    return Status::ok();
}

std::size_t
Shipper::peerCount() const
{
    std::lock_guard<std::mutex> guard(mutex_);
    return peers_.size();
}

ErrorBody
Shipper::lastError() const
{
    std::lock_guard<std::mutex> guard(mutex_);
    return last_error_;
}

Shipper::Stats
Shipper::stats() const
{
    std::lock_guard<std::mutex> guard(mutex_);
    Stats snapshot = stats_;
    snapshot.peers = static_cast<std::uint32_t>(peers_.size());
    return snapshot;
}

} // namespace varan::wire
