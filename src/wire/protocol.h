/**
 * @file
 * Framed wire protocol for multi-node event shipping (DMON-style
 * relaxed batching across the wire, arXiv:1903.03643).
 *
 * The normative byte-level specification — frame header layout,
 * checksum coverage, every body struct, the epoch-reconciliation rules
 * and the v1→v3 version history — lives in docs/WIRE_PROTOCOL.md.
 * Keep the two in sync: CI greps that document for the version this
 * header declares.
 *
 * A Shipper on the leader's node drains the tuple rings and streams
 * them to one or more Receivers on remote nodes, each of which
 * re-materializes the events into a local ring/pool arena so an
 * unmodified follower dispatch loop can consume them. The stream is a
 * sequence of frames:
 *
 *   [FrameHeader][body bytes]
 *
 * Frame types:
 *   Hello     shipper -> receiver: engine geometry (ring capacity,
 *             tuple count, variants), the shipping engine's
 *             (engine_epoch, stream_generation) stamp, plus a
 *             per-shard pool statistics snapshot — the receiver
 *             validates compatibility and epoch freshness before
 *             anything streams.
 *   HelloAck  receiver -> shipper: the receiver's stable identity
 *             (receiver_id, so a reconnect resumes *its* session on a
 *             fan-out shipper), the (epoch, generation) it last
 *             reconciled against, and per-tuple resume cursors (next
 *             ring sequence the receiver expects). A fresh link acks
 *             all zeros; a reconnect acks what already arrived, so the
 *             shipper retransmits only the unacknowledged tail.
 *   Events    shipper -> receiver: `count` ring events for one tuple
 *             starting at ring sequence `seq`, followed by the pool
 *             payload bytes of every event that carries a payload,
 *             back to back in event order (sizes come from each
 *             event's payload_size field).
 *   Credit    receiver -> shipper: per-tuple delivery confirmations —
 *             batched flow control. The shipper keeps at most
 *             `credit_window` unacknowledged events per tuple *per
 *             peer* and retires its retransmit buffer up to the
 *             slowest peer's credited cursor.
 *   Status    the coordinator status RPC. An empty-body Status frame
 *             (receiver -> shipper) is a *request*; the shipper
 *             answers with a Status frame whose body is one
 *             core::StatusReport — the same consolidated snapshot
 *             Nvx::status() serves locally. Receivers also use it as a
 *             liveness probe before cross-node promotion.
 *   Divergence receiver -> shipper: structured divergence records a
 *             remote follower appended to its node's ledger, relayed
 *             upstream so the leader's coordinator (and its
 *             on_divergence_record hook) sees divergences fleet-wide. The
 *             body is `count` trace::DivergenceRecord structs; the
 *             shipper appends them to the leader's ledger tagged with
 *             the sending receiver's identity.
 *   Bye       either side: orderly end of stream.
 *   Error     either side: a decodable rejection (stale epoch or
 *             generation, geometry mismatch, resume cursor behind the
 *             retained tail). Carries both sides' (epoch, generation)
 *             so the operator can see *why* the link was refused. The
 *             sender drops the link after an Error.
 *   Lease     receiver <-> receiver (v6): quorum-plane heartbeat and
 *             lease announcement. Every member broadcasts one
 *             periodically carrying the lease holder and term it
 *             believes in; a holder's heartbeat refreshes the lease on
 *             every peer that hears it.
 *   Vote      receiver <-> receiver (v6): one election round-trip. A
 *             candidate sends a Request for a fresh term; each peer
 *             answers Grant or Deny. A candidate needs grants from a
 *             quorum of the configured membership before it may bump
 *             epoch/generation and promote.
 *   Fence     receiver <-> receiver (v6): an authoritative order to
 *             step aside, sent by a quorum-backed holder to a node
 *             still claiming a stale lease term. The target stops
 *             serving (keeps buffering) until it rejoins the majority.
 *
 * Integers are native-endian (x86-64 on both ends, matching the event
 * layout itself which is memcpy'd); the body is integrity-checked with
 * FNV-1a. Version changes bump kProtocolVersion, and a receiver
 * rejects frames whose version it does not speak.
 */

#ifndef VARAN_WIRE_PROTOCOL_H
#define VARAN_WIRE_PROTOCOL_H

#include <cstddef>
#include <cstdint>
#include <cstring>

#include "core/layout.h"
#include "core/status.h"
#include "ring/event.h"
#include "shmem/pool.h"

namespace varan::wire {

inline constexpr std::uint32_t kFrameMagic = 0x31525756; // "VWR1"
/** v6: the quorum control plane — Lease/Vote/Fence frames carry
 *  lease-based leader election between receiver nodes, so promotion
 *  is gated on a quorum of the configured membership instead of a
 *  single hand-armed watchdog. The Status body grew the QuorumStatus
 *  section and the receiver's `fenced` flag.
 *  v5: the Divergence frame ships structured divergence records
 *  (trace::DivergenceRecord) from a remote follower node back to the
 *  leader's coordinator, and the Status body grew the TraceStatus
 *  observability section (latency histograms + ledger tail).
 *  v4: the Status frame body (core::StatusReport) grew the live-tuning
 *  AdaptStatus section and extended shipper statistics, and the
 *  shipper may broadcast unsolicited Status frames on a configured
 *  push interval (the receiver's decode path is unchanged — any
 *  non-empty Status frame updates its remote snapshot).
 *  v3: Hello/HelloAck carry (engine_epoch, stream_generation) and the
 *  receiver's stable identity; the Error frame makes rejections
 *  decodable — the epoch-reconciliation handshake behind cross-node
 *  failover and one-shipper/N-receiver fan-out.
 *  v2: the Status frame became the status RPC (empty body = request,
 *  core::StatusReport body = reply); in v1 it carried a HelloBody and
 *  nothing ever sent it. */
inline constexpr std::uint16_t kProtocolVersion = 6;

/** Upper bound on a frame body; anything larger is corruption. */
inline constexpr std::uint32_t kMaxBodyBytes = 16u << 20;

enum class FrameType : std::uint16_t {
    Invalid = 0,
    Hello,
    HelloAck,
    Events,
    Credit,
    Status,
    Bye,
    Error,
    /** receiver -> shipper: `count` trace::DivergenceRecord entries a
     *  remote follower appended to its local ledger, relayed so the
     *  leader's coordinator sees divergences fleet-wide (v5). */
    Divergence,
    /** receiver <-> receiver (v6): quorum heartbeat + lease
     *  announcement (LeaseBody). */
    Lease,
    /** receiver <-> receiver (v6): election request/grant/deny
     *  (VoteBody). */
    Vote,
    /** receiver <-> receiver (v6): authoritative step-aside order from
     *  a quorum-backed lease holder (FenceBody). */
    Fence,
};

/** Why a peer refused the link (ErrorBody::code). */
enum class WireError : std::uint32_t {
    None = 0,
    /** The peer's stream_generation is older than what this side
     *  already reconciled against — a resurrected pre-failover leader
     *  must not overwrite the promoted stream. */
    StaleGeneration = 1,
    /** Same generation, but the peer's engine_epoch regressed. */
    StaleEpoch = 2,
    /** Ring capacity / tuple bound do not match the local layout. */
    GeometryMismatch = 3,
    /** The receiver's resume cursor is behind the shipper's retained
     *  tail (frames already retired or never taped) — the receiver
     *  needs a full resync this stream cannot provide. */
    PeerTooFarBehind = 4,
    /** The receiver's resume cursor is *ahead* of the shipper's drain
     *  cursor: it holds a tail the dead leader never replicated to
     *  this (promoted) node. Accepting it would silently diverge —
     *  the promoted leader publishes different events at those
     *  positions. */
    CursorAheadOfStream = 5,
    /** The node behind this endpoint no longer consumes any stream —
     *  it promoted and leads its own generation. Tells a concurrently
     *  promoted sibling (or a resurrected leader) that nothing it
     *  ships here will ever be read. */
    PeerNotReceiving = 6,
};

/** Fixed preamble of every frame. */
struct FrameHeader {
    std::uint32_t magic;
    std::uint16_t version;
    std::uint16_t type;      ///< FrameType
    std::uint32_t body_len;  ///< bytes following the header
    std::uint32_t tuple;     ///< Events: tuple id; otherwise 0
    std::uint64_t seq;       ///< Events: ring sequence of first event
    std::uint32_t count;     ///< Events: events; Credit: entries
    std::uint32_t body_crc;  ///< FNV-1a over the body bytes
};

static_assert(sizeof(FrameHeader) == 32, "header layout is part of the protocol");

/** Geometry + epoch stamp + pool pressure snapshot (Hello body). */
struct HelloBody {
    std::uint32_t num_variants;   ///< variants on the shipping node
    std::uint32_t ring_capacity;  ///< events per tuple ring
    std::uint32_t max_tuples;     ///< compile-time tuple bound
    std::uint32_t num_tuples;     ///< live tuples at snapshot time
    std::uint32_t leader_id;
    std::uint32_t engine_epoch;       ///< election count on the shipper
    std::uint32_t stream_generation;  ///< bumped on cross-node promotion
    std::uint32_t reserved;
    std::uint64_t events_streamed;
    shmem::PoolStats pool;        ///< per-shard carve/free/spill stats
};

/** Receiver identity + reconciliation stamp + resume cursors
 *  (HelloAck body). */
struct HelloAckBody {
    std::uint32_t max_tuples;
    std::uint32_t engine_epoch;       ///< epoch the receiver last adopted
    std::uint32_t stream_generation;  ///< generation it reconciled against
    std::uint32_t reserved;
    std::uint64_t receiver_id;        ///< stable per-receiver identity
    std::uint64_t next_seq[core::kMaxTuples]; ///< next expected ring seq
};

/** One flow-control confirmation (Credit body holds `count` of them). */
struct CreditEntry {
    std::uint32_t tuple;
    std::uint32_t reserved;
    std::uint64_t delivered; ///< ring sequences < delivered have landed
};

/** A decodable link rejection (Error body). `local` is the sender of
 *  the Error frame, `peer` echoes what the rejected side announced. */
struct ErrorBody {
    std::uint32_t code;              ///< WireError
    std::uint32_t reserved;
    std::uint32_t local_epoch;
    std::uint32_t local_generation;
    std::uint32_t peer_epoch;
    std::uint32_t peer_generation;
    std::uint64_t detail;            ///< code-specific (e.g. cursor floor)
};

/** FNV-1a over arbitrary bytes — the frame body checksum. */
inline std::uint32_t
bodyChecksum(const void *data, std::size_t len)
{
    const auto *p = static_cast<const unsigned char *>(data);
    std::uint32_t h = 2166136261u;
    for (std::size_t i = 0; i < len; ++i) {
        h ^= p[i];
        h *= 16777619u;
    }
    return h;
}

/** Fill the fixed fields of a header. The checksum starts as the
 *  empty-body FNV basis, correct as-is for body-less frames; senders
 *  with a body overwrite it with bodyChecksum(). */
inline FrameHeader
makeHeader(FrameType type, std::uint32_t body_len)
{
    FrameHeader h = {};
    h.magic = kFrameMagic;
    h.version = kProtocolVersion;
    h.type = static_cast<std::uint16_t>(type);
    h.body_len = body_len;
    h.body_crc = bodyChecksum(nullptr, 0);
    return h;
}

/**
 * Structural validation of a received header: magic, version, type
 * range, and a sane body length. Returns false on any mismatch — the
 * stream is unrecoverable past a bad header (framing is lost), so the
 * receiver drops the link.
 */
inline bool
headerValid(const FrameHeader &h)
{
    if (h.magic != kFrameMagic || h.version != kProtocolVersion)
        return false;
    if (h.type == 0 ||
        h.type > static_cast<std::uint16_t>(FrameType::Fence))
        return false;
    if (h.body_len > kMaxBodyBytes)
        return false;
    if (h.tuple >= core::kMaxTuples &&
        static_cast<FrameType>(h.type) == FrameType::Events)
        return false;
    return true;
}

/** Wire size of a Status reply: header + serialized StatusReport. */
inline constexpr std::size_t kStatusFrameBytes =
    sizeof(FrameHeader) + sizeof(core::StatusReport);

/** A status *request* is an empty-body Status frame. */
inline FrameHeader
makeStatusRequest()
{
    return makeHeader(FrameType::Status, 0);
}

/** Serialize @p report into a wire-ready Status reply frame. */
inline void
encodeStatusFrame(const core::StatusReport &report,
                  std::uint8_t out[kStatusFrameBytes])
{
    FrameHeader header =
        makeHeader(FrameType::Status, sizeof(core::StatusReport));
    header.body_crc = bodyChecksum(&report, sizeof(report));
    std::memcpy(out, &header, sizeof(header));
    std::memcpy(out + sizeof(header), &report, sizeof(report));
}

/**
 * Decode a Status reply body received with @p header.
 * @return false on type, length or checksum mismatch.
 */
inline bool
decodeStatusFrame(const FrameHeader &header, const void *body,
                  std::size_t body_len, core::StatusReport *out)
{
    if (static_cast<FrameType>(header.type) != FrameType::Status)
        return false;
    if (body_len != sizeof(core::StatusReport) ||
        header.body_len != body_len) {
        return false;
    }
    if (header.body_crc != bodyChecksum(body, body_len))
        return false;
    std::memcpy(out, body, sizeof(core::StatusReport));
    return true;
}

/** Wire size of an Error frame: header + ErrorBody. */
inline constexpr std::size_t kErrorFrameBytes =
    sizeof(FrameHeader) + sizeof(ErrorBody);

/** Serialize a link rejection into a wire-ready Error frame. */
inline void
encodeErrorFrame(const ErrorBody &error, std::uint8_t out[kErrorFrameBytes])
{
    FrameHeader header = makeHeader(FrameType::Error, sizeof(ErrorBody));
    header.body_crc = bodyChecksum(&error, sizeof(error));
    std::memcpy(out, &header, sizeof(header));
    std::memcpy(out + sizeof(header), &error, sizeof(error));
}

/**
 * Decode an Error body received with @p header.
 * @return false on type, length or checksum mismatch.
 */
inline bool
decodeErrorFrame(const FrameHeader &header, const void *body,
                 std::size_t body_len, ErrorBody *out)
{
    if (static_cast<FrameType>(header.type) != FrameType::Error)
        return false;
    if (body_len != sizeof(ErrorBody) || header.body_len != body_len)
        return false;
    if (header.body_crc != bodyChecksum(body, body_len))
        return false;
    std::memcpy(out, body, sizeof(ErrorBody));
    return true;
}

/** Most DivergenceRecords one Divergence frame carries — the ledger
 *  itself only retains kLedgerSlots, so one frame always suffices. */
inline constexpr std::uint32_t kDivergenceFrameMaxRecords =
    static_cast<std::uint32_t>(trace::kLedgerSlots);

/** Wire size of a maximal Divergence frame. */
inline constexpr std::size_t kDivergenceFrameMaxBytes =
    sizeof(FrameHeader) +
    kDivergenceFrameMaxRecords * sizeof(trace::DivergenceRecord);

/**
 * Serialize @p count divergence records into a wire-ready Divergence
 * frame. @p out must hold sizeof(FrameHeader) + count * 56 bytes.
 * @return the frame's total wire size.
 */
inline std::size_t
encodeDivergenceFrame(const trace::DivergenceRecord *records,
                      std::uint32_t count, std::uint8_t *out)
{
    const std::uint32_t body_len = static_cast<std::uint32_t>(
        count * sizeof(trace::DivergenceRecord));
    FrameHeader header = makeHeader(FrameType::Divergence, body_len);
    header.count = count;
    header.body_crc = bodyChecksum(records, body_len);
    std::memcpy(out, &header, sizeof(header));
    std::memcpy(out + sizeof(header), records, body_len);
    return sizeof(header) + body_len;
}

/**
 * Decode a Divergence frame body received with @p header into @p out
 * (capacity @p max records). @return the number of records decoded,
 * or SIZE_MAX on type, length, count or checksum mismatch.
 */
inline std::size_t
decodeDivergenceFrame(const FrameHeader &header, const void *body,
                      std::size_t body_len, trace::DivergenceRecord *out,
                      std::size_t max)
{
    if (static_cast<FrameType>(header.type) != FrameType::Divergence)
        return SIZE_MAX;
    if (header.count > kDivergenceFrameMaxRecords || header.count > max)
        return SIZE_MAX;
    if (body_len != header.count * sizeof(trace::DivergenceRecord) ||
        header.body_len != body_len) {
        return SIZE_MAX;
    }
    if (header.body_crc != bodyChecksum(body, body_len))
        return SIZE_MAX;
    std::memcpy(out, body, body_len);
    return header.count;
}

// --- quorum control plane (v6) ---------------------------------------

/** "No node" sentinel for quorum node ids (LeaseBody::holder_id when
 *  no lease is known). */
inline constexpr std::uint32_t kNoQuorumNode = 0xffffffffu;

/** What a Vote frame means (VoteBody::kind). */
enum class VoteKind : std::uint8_t {
    Request = 0, ///< candidate asks for the lease at `term`
    Grant = 1,   ///< voter promises `term` to the candidate
    Deny = 2,    ///< voter already promised `term`, or a lease is live
};

/** One election round-trip message (Vote body). A candidate sends a
 *  Request carrying the term it wants and the stream generation it
 *  will stamp if elected; each peer answers Grant or Deny with its own
 *  current term in `voter_term` so a losing candidate learns how far
 *  ahead the membership is. */
struct VoteBody {
    std::uint64_t term;         ///< lease term requested / answered
    std::uint32_t node_id;      ///< sender's quorum node id
    std::uint32_t candidate_id; ///< node asking for the lease
    std::uint32_t generation;   ///< generation the candidate will stamp
    std::uint8_t kind;          ///< VoteKind
    std::uint8_t reserved[3];
    std::uint64_t voter_term;   ///< responder's current term (0 on Request)
};

static_assert(sizeof(VoteBody) == 32, "wire-visible layout");

/** Quorum heartbeat + lease announcement (Lease body). Broadcast by
 *  every member on its heartbeat tick; the holder's own heartbeat is
 *  what refreshes the lease fleet-wide. */
struct LeaseBody {
    std::uint64_t term;        ///< current lease term (0 = none known)
    std::uint32_t node_id;     ///< sender's quorum node id
    std::uint32_t holder_id;   ///< believed holder, kNoQuorumNode if none
    std::uint32_t generation;  ///< quorum-stamped stream generation
    std::uint32_t fenced;      ///< sender fenced itself (diagnostics)
    std::uint64_t ttl_ns;      ///< lease validity left, sender's view
};

static_assert(sizeof(LeaseBody) == 32, "wire-visible layout");

/** Why a node was ordered to fence (FenceBody::reason). */
enum class FenceReason : std::uint32_t {
    None = 0,
    /** The target announced holdership of a term older than the live
     *  lease — a healed minority winner stepping on the majority. */
    StaleTerm = 1,
    /** The target lost contact with a quorum of the membership. */
    LostQuorum = 2,
};

/** Authoritative step-aside order (Fence body): sent by a node holding
 *  a quorum-backed lease to a peer still claiming a stale one. The
 *  target stops serving, keeps buffering, and rejoins as a follower
 *  of `term`. */
struct FenceBody {
    std::uint64_t term;       ///< the live lease term the target must adopt
    std::uint32_t node_id;    ///< sender (the quorum-backed holder)
    std::uint32_t target_id;  ///< node being fenced
    std::uint32_t generation; ///< the live quorum-stamped generation
    std::uint32_t reason;     ///< FenceReason
};

static_assert(sizeof(FenceBody) == 24, "wire-visible layout");

inline constexpr std::size_t kVoteFrameBytes =
    sizeof(FrameHeader) + sizeof(VoteBody);
inline constexpr std::size_t kLeaseFrameBytes =
    sizeof(FrameHeader) + sizeof(LeaseBody);
inline constexpr std::size_t kFenceFrameBytes =
    sizeof(FrameHeader) + sizeof(FenceBody);

/** Serialize a quorum Vote message into a wire-ready frame. */
inline void
encodeVoteFrame(const VoteBody &vote, std::uint8_t out[kVoteFrameBytes])
{
    FrameHeader header = makeHeader(FrameType::Vote, sizeof(VoteBody));
    header.body_crc = bodyChecksum(&vote, sizeof(vote));
    std::memcpy(out, &header, sizeof(header));
    std::memcpy(out + sizeof(header), &vote, sizeof(vote));
}

/** Decode a Vote body received with @p header.
 *  @return false on type, length or checksum mismatch. */
inline bool
decodeVoteFrame(const FrameHeader &header, const void *body,
                std::size_t body_len, VoteBody *out)
{
    if (static_cast<FrameType>(header.type) != FrameType::Vote)
        return false;
    if (body_len != sizeof(VoteBody) || header.body_len != body_len)
        return false;
    if (header.body_crc != bodyChecksum(body, body_len))
        return false;
    std::memcpy(out, body, sizeof(VoteBody));
    return true;
}

/** Serialize a quorum heartbeat into a wire-ready Lease frame. */
inline void
encodeLeaseFrame(const LeaseBody &lease, std::uint8_t out[kLeaseFrameBytes])
{
    FrameHeader header = makeHeader(FrameType::Lease, sizeof(LeaseBody));
    header.body_crc = bodyChecksum(&lease, sizeof(lease));
    std::memcpy(out, &header, sizeof(header));
    std::memcpy(out + sizeof(header), &lease, sizeof(lease));
}

/** Decode a Lease body received with @p header.
 *  @return false on type, length or checksum mismatch. */
inline bool
decodeLeaseFrame(const FrameHeader &header, const void *body,
                 std::size_t body_len, LeaseBody *out)
{
    if (static_cast<FrameType>(header.type) != FrameType::Lease)
        return false;
    if (body_len != sizeof(LeaseBody) || header.body_len != body_len)
        return false;
    if (header.body_crc != bodyChecksum(body, body_len))
        return false;
    std::memcpy(out, body, sizeof(LeaseBody));
    return true;
}

/** Serialize a step-aside order into a wire-ready Fence frame. */
inline void
encodeFenceFrame(const FenceBody &fence, std::uint8_t out[kFenceFrameBytes])
{
    FrameHeader header = makeHeader(FrameType::Fence, sizeof(FenceBody));
    header.body_crc = bodyChecksum(&fence, sizeof(fence));
    std::memcpy(out, &header, sizeof(header));
    std::memcpy(out + sizeof(header), &fence, sizeof(fence));
}

/** Decode a Fence body received with @p header.
 *  @return false on type, length or checksum mismatch. */
inline bool
decodeFenceFrame(const FrameHeader &header, const void *body,
                 std::size_t body_len, FenceBody *out)
{
    if (static_cast<FrameType>(header.type) != FrameType::Fence)
        return false;
    if (body_len != sizeof(FenceBody) || header.body_len != body_len)
        return false;
    if (header.body_crc != bodyChecksum(body, body_len))
        return false;
    std::memcpy(out, body, sizeof(FenceBody));
    return true;
}

/**
 * Payload bytes an Events frame body carries after its event array:
 * the sum of payload_size over payload-carrying events.
 */
inline std::size_t
eventsPayloadBytes(const ring::Event *events, std::size_t count)
{
    std::size_t total = 0;
    for (std::size_t i = 0; i < count; ++i) {
        if (events[i].hasPayload())
            total += events[i].payload_size;
    }
    return total;
}

} // namespace varan::wire

#endif // VARAN_WIRE_PROTOCOL_H
