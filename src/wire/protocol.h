/**
 * @file
 * Framed wire protocol for multi-node event shipping (DMON-style
 * relaxed batching across the wire, arXiv:1903.03643).
 *
 * A Shipper on the leader's node drains the tuple rings and streams
 * them to a Receiver on a remote node, which re-materializes the
 * events into a local ring/pool arena so an unmodified follower
 * dispatch loop can consume them. The stream is a sequence of frames:
 *
 *   [FrameHeader][body bytes]
 *
 * Frame types:
 *   Hello     shipper -> receiver: engine geometry (ring capacity,
 *             tuple count, variants) plus a per-shard pool statistics
 *             snapshot — the receiver validates compatibility before
 *             anything streams.
 *   HelloAck  receiver -> shipper: per-tuple resume cursors (next ring
 *             sequence the receiver expects). A fresh link acks all
 *             zeros; a reconnect acks what already arrived, so the
 *             shipper retransmits only the unacknowledged tail.
 *   Events    shipper -> receiver: `count` ring events for one tuple
 *             starting at ring sequence `seq`, followed by the pool
 *             payload bytes of every event that carries a payload,
 *             back to back in event order (sizes come from each
 *             event's payload_size field).
 *   Credit    receiver -> shipper: per-tuple delivery confirmations —
 *             batched flow control. The shipper keeps at most
 *             `credit_window` unacknowledged events per tuple and
 *             drops its retransmit buffer up to each credited cursor.
 *   Status    the coordinator status RPC. An empty-body Status frame
 *             (receiver -> shipper) is a *request*; the shipper
 *             answers with a Status frame whose body is one
 *             core::StatusReport — the same consolidated snapshot
 *             Nvx::status() serves locally (geometry, election state,
 *             stream counters, per-variant state, pool pressure and
 *             the shipper's own wire statistics).
 *   Bye       either side: orderly end of stream.
 *
 * Integers are native-endian (x86-64 on both ends, matching the event
 * layout itself which is memcpy'd); the body is integrity-checked with
 * FNV-1a. Version changes bump kWireVersion, and a receiver rejects
 * frames whose version it does not speak.
 */

#ifndef VARAN_WIRE_PROTOCOL_H
#define VARAN_WIRE_PROTOCOL_H

#include <cstddef>
#include <cstdint>
#include <cstring>

#include "core/layout.h"
#include "core/status.h"
#include "ring/event.h"
#include "shmem/pool.h"

namespace varan::wire {

inline constexpr std::uint32_t kFrameMagic = 0x31525756; // "VWR1"
/** v2: the Status frame became the status RPC (empty body = request,
 *  core::StatusReport body = reply); in v1 it carried a HelloBody and
 *  nothing ever sent it. */
inline constexpr std::uint16_t kWireVersion = 2;

/** Upper bound on a frame body; anything larger is corruption. */
inline constexpr std::uint32_t kMaxBodyBytes = 16u << 20;

enum class FrameType : std::uint16_t {
    Invalid = 0,
    Hello,
    HelloAck,
    Events,
    Credit,
    Status,
    Bye,
};

/** Fixed preamble of every frame. */
struct FrameHeader {
    std::uint32_t magic;
    std::uint16_t version;
    std::uint16_t type;      ///< FrameType
    std::uint32_t body_len;  ///< bytes following the header
    std::uint32_t tuple;     ///< Events: tuple id; otherwise 0
    std::uint64_t seq;       ///< Events: ring sequence of first event
    std::uint32_t count;     ///< Events: events; Credit: entries
    std::uint32_t body_crc;  ///< FNV-1a over the body bytes
};

static_assert(sizeof(FrameHeader) == 32, "header layout is part of the protocol");

/** Geometry + pool pressure snapshot (Hello and Status bodies). */
struct HelloBody {
    std::uint32_t num_variants;   ///< variants on the shipping node
    std::uint32_t ring_capacity;  ///< events per tuple ring
    std::uint32_t max_tuples;     ///< compile-time tuple bound
    std::uint32_t num_tuples;     ///< live tuples at snapshot time
    std::uint32_t leader_id;
    std::uint32_t reserved;
    std::uint64_t events_streamed;
    shmem::PoolStats pool;        ///< per-shard carve/free/spill stats
};

/** Per-tuple resume cursors (HelloAck body). */
struct HelloAckBody {
    std::uint32_t max_tuples;
    std::uint32_t reserved;
    std::uint64_t next_seq[core::kMaxTuples]; ///< next expected ring seq
};

/** One flow-control confirmation (Credit body holds `count` of them). */
struct CreditEntry {
    std::uint32_t tuple;
    std::uint32_t reserved;
    std::uint64_t delivered; ///< ring sequences < delivered have landed
};

/** FNV-1a over arbitrary bytes — the frame body checksum. */
inline std::uint32_t
bodyChecksum(const void *data, std::size_t len)
{
    const auto *p = static_cast<const unsigned char *>(data);
    std::uint32_t h = 2166136261u;
    for (std::size_t i = 0; i < len; ++i) {
        h ^= p[i];
        h *= 16777619u;
    }
    return h;
}

/** Fill the fixed fields of a header. The checksum starts as the
 *  empty-body FNV basis, correct as-is for body-less frames; senders
 *  with a body overwrite it with bodyChecksum(). */
inline FrameHeader
makeHeader(FrameType type, std::uint32_t body_len)
{
    FrameHeader h = {};
    h.magic = kFrameMagic;
    h.version = kWireVersion;
    h.type = static_cast<std::uint16_t>(type);
    h.body_len = body_len;
    h.body_crc = bodyChecksum(nullptr, 0);
    return h;
}

/**
 * Structural validation of a received header: magic, version, type
 * range, and a sane body length. Returns false on any mismatch — the
 * stream is unrecoverable past a bad header (framing is lost), so the
 * receiver drops the link.
 */
inline bool
headerValid(const FrameHeader &h)
{
    if (h.magic != kFrameMagic || h.version != kWireVersion)
        return false;
    if (h.type == 0 || h.type > static_cast<std::uint16_t>(FrameType::Bye))
        return false;
    if (h.body_len > kMaxBodyBytes)
        return false;
    if (h.tuple >= core::kMaxTuples &&
        static_cast<FrameType>(h.type) == FrameType::Events)
        return false;
    return true;
}

/** Wire size of a Status reply: header + serialized StatusReport. */
inline constexpr std::size_t kStatusFrameBytes =
    sizeof(FrameHeader) + sizeof(core::StatusReport);

/** A status *request* is an empty-body Status frame. */
inline FrameHeader
makeStatusRequest()
{
    return makeHeader(FrameType::Status, 0);
}

/** Serialize @p report into a wire-ready Status reply frame. */
inline void
encodeStatusFrame(const core::StatusReport &report,
                  std::uint8_t out[kStatusFrameBytes])
{
    FrameHeader header =
        makeHeader(FrameType::Status, sizeof(core::StatusReport));
    header.body_crc = bodyChecksum(&report, sizeof(report));
    std::memcpy(out, &header, sizeof(header));
    std::memcpy(out + sizeof(header), &report, sizeof(report));
}

/**
 * Decode a Status reply body received with @p header.
 * @return false on type, length or checksum mismatch.
 */
inline bool
decodeStatusFrame(const FrameHeader &header, const void *body,
                  std::size_t body_len, core::StatusReport *out)
{
    if (static_cast<FrameType>(header.type) != FrameType::Status)
        return false;
    if (body_len != sizeof(core::StatusReport) ||
        header.body_len != body_len) {
        return false;
    }
    if (header.body_crc != bodyChecksum(body, body_len))
        return false;
    std::memcpy(out, body, sizeof(core::StatusReport));
    return true;
}

/**
 * Payload bytes an Events frame body carries after its event array:
 * the sum of payload_size over payload-carrying events.
 */
inline std::size_t
eventsPayloadBytes(const ring::Event *events, std::size_t count)
{
    std::size_t total = 0;
    for (std::size_t i = 0; i < count; ++i) {
        if (events[i].hasPayload())
            total += events[i].payload_size;
    }
    return total;
}

} // namespace varan::wire

#endif // VARAN_WIRE_PROTOCOL_H
