/**
 * @file
 * Leader-node side of multi-node event shipping.
 *
 * A Shipper attaches tap consumer slots to every tuple ring (exactly
 * like the record-replay recorder) and streams the leader's event
 * history to one or more remote Receivers — one shipper, N peers.
 * Batching is DMON-style relaxed: events are drained with peekBatch()
 * — one head acquire per run — serialized once into Events frames of
 * up to `ship_batch` events (payload bytes inlined behind the event
 * array) and fanned out to every peer whose credit window is open,
 * through a netio::EventLoop that also delivers each peer's Credit
 * frames.
 *
 * Fan-out bookkeeping is a per-peer session table keyed by the
 * receiver's stable identity (HelloAck::receiver_id): each session
 * carries its own credit window, send cursor and non-blocking outbox,
 * so a stalled peer neither gates its siblings nor wedges the pump
 * thread in a blocking write. Frames are retired from the shared
 * retransmit buffer once the *slowest* registered session credits past
 * them; a session that falls further behind than `retain_limit` events
 * is evicted (it would pin the buffer forever) and must resync from a
 * fresh stream. Ring drain is gated by the *fastest* live session —
 * remote backpressure only propagates to the leader when every peer
 * stalls.
 *
 * Flow control is credit-based per peer: at most `credit_window`
 * events per tuple may be unacknowledged to one peer; beyond that,
 * frames stay buffered for that peer while faster peers keep
 * receiving. Shipped-but-unacked frames are kept in the retransmit
 * buffer, so a link drop mid-batch is survivable: addPeer() on a
 * replacement socket re-handshakes, matches the session by
 * receiver_id, learns the resume cursors from the HelloAck, drops what
 * already landed and retransmits the rest — at-least-once delivery
 * with receiver-side dedup, never a hole.
 *
 * The v3 handshake is epoch-stamped: Hello carries the engine's
 * (engine_epoch, stream_generation); a receiver that already
 * reconciled against a newer generation answers with a decodable
 * Error frame instead of a HelloAck, and a receiver whose resume
 * cursor is behind this shipper's retained tail is rejected with
 * PeerTooFarBehind. A promoted shipper (taps attached mid-stream)
 * therefore serves exactly the suffix it owns and refuses peers it
 * cannot complete.
 */

#ifndef VARAN_WIRE_SHIPPER_H
#define VARAN_WIRE_SHIPPER_H

#include <atomic>
#include <cstddef>
#include <deque>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "core/layout.h"
#include "netio/eventloop.h"
#include "wire/protocol.h"

namespace varan::wire {

class Shipper
{
  public:
    /** Largest supported ship batch (events per Events frame). */
    static constexpr std::size_t kMaxShipBatch = 64;

    struct Options {
        /** Max events per Events frame (the ship batch of section-style
         *  "relaxed synchronization"): 1 degenerates to per-event
         *  shipping, 16-64 amortize framing + writev cost. Clamped to
         *  [1, kMaxShipBatch]. Seeds the live ShipBatch `Tuning` knob
         *  (first-seeder-wins); the value actually in force is re-read
         *  from the shared region at every batch boundary, so a live
         *  retune — operator or adaptive controller — applies without
         *  restart. */
        std::size_t ship_batch = 16;
        /** Max unacknowledged events per tuple *per peer* before that
         *  peer stops receiving new frames (bounds remote run-ahead).
         *  Seeds the live CreditWindow `Tuning` knob, re-read like
         *  ship_batch. */
        std::size_t credit_window = 4096;
        /** A session whose credited cursor falls this many events
         *  behind the drain cursor is evicted — it would pin the
         *  retransmit buffer forever. 0 = 4 * credit_window. With a
         *  single peer the drain gate keeps the lag under
         *  credit_window, so eviction can only fire in fan-out. */
        std::size_t retain_limit = 0;
        /** Per-peer outbox cap (bytes buffered for a peer whose socket
         *  is full before new frames stop being queued to it). Soft by
         *  one frame: a frame whose direct send hits EAGAIN mid-write
         *  must park its remainder whole to preserve framing, so peak
         *  usage is the cap plus one frame. */
        std::size_t outbox_limit = 4u << 20;
        /** Pump tick while idle (ms). */
        int tick_ms = 20;
        /** Unsolicited Status frame broadcast interval (ns); 0 = off.
         *  Every live peer receives the same coordinator snapshot the
         *  status RPC serves — the receiver-side decode path is
         *  identical, no request round-trip needed. */
        std::uint64_t status_push_ns = 0;
    };

    struct Stats {
        std::uint64_t frames = 0;  ///< frame transmissions (per peer)
        std::uint64_t events = 0;  ///< events drained from the rings
        std::uint64_t bytes = 0;
        std::uint64_t payload_bytes = 0;
        std::uint64_t credits_received = 0;
        std::uint64_t retransmitted_frames = 0;
        std::uint64_t reconnects = 0;
        std::uint64_t status_requests_served = 0; ///< status RPC replies
        std::uint64_t status_pushes = 0;   ///< unsolicited Status rounds
        std::uint64_t errors_sent = 0;     ///< Error frames sent
        std::uint64_t errors_received = 0; ///< Error frames decoded
        std::uint64_t drain_passes = 0;    ///< drainTuple passes with work
        std::uint64_t credit_stalls = 0;   ///< passes gated by the window
        std::uint64_t divergence_records = 0; ///< relayed from receivers
        std::uint32_t peers = 0;           ///< registered sessions
        std::uint32_t peers_evicted = 0;   ///< sessions dropped as behind
    };

    Shipper(const shmem::Region *region, const core::EngineLayout *layout,
            Options options);
    Shipper(const shmem::Region *region, const core::EngineLayout *layout)
        : Shipper(region, layout, Options())
    {
    }
    ~Shipper();

    VARAN_NO_COPY_NO_MOVE(Shipper);

    /** Attach a tap consumer slot on every tuple ring. On a fresh
     *  engine (pre-spawn hook) the taps see the stream from event one;
     *  on a promoted engine they attach at the current ring head and
     *  the shipper serves the suffix from there (its cursor floor). */
    Status attachTaps();

    /**
     * Adopt a connected socket as a peer: send Hello (geometry + epoch
     * stamp + pool stats), await HelloAck, and bind or resume the
     * session keyed by the receiver's identity. A resumed session
     * adopts the receiver's cursors and retransmits the
     * unacknowledged tail; a new session starts at the receiver's
     * cursors (all zeros for a fresh receiver). A receiver that
     * rejects the link answers with an Error frame, which is decoded
     * into lastError() and surfaced as EPROTO.
     */
    Status addPeer(int socket_fd);

    /** Compatibility alias for the single-peer API: adopt the first
     *  (or a replacement) socket. Identical to addPeer(). */
    Status handshake(int socket_fd) { return addPeer(socket_fd); }

    /** Failover path: adopt a replacement socket after a link drop.
     *  The session is matched by receiver_id and its unacknowledged
     *  tail retransmitted. */
    Status reconnect(int socket_fd);

    /** Start the background pump thread. */
    void start();

    /** Drain what is left in the rings, send Bye, stop the pump, and
     *  detach the taps. */
    Status finish();

    /** One synchronous pump pass (tests and benches drive this
     *  directly): handle pending credits, drain every ring once, fan
     *  out what fits to every open peer window. @return events drained
     *  this pass. */
    std::size_t pumpOnce();

    /** True while at least one peer link is usable. */
    bool linkUp() const { return link_up_.load(std::memory_order_acquire); }

    /** Registered peer sessions (live or awaiting reconnect). */
    std::size_t peerCount() const;

    /** The last Error frame a peer answered a handshake with (zeroed
     *  code when no handshake was ever rejected). */
    ErrorBody lastError() const;

    Stats stats() const;

    /** Fill a StatusReport's shipper section from a Stats snapshot —
     *  the one mapping used by both Nvx::status() and the wire Status
     *  RPC reply, so local and remote reports can never disagree. */
    static void fillWireStatus(core::ShipperWireStatus &out,
                               const Stats &stats, bool link_up);

  private:
    struct TupleShip {
        int tap_slot = -1;
        std::uint64_t next_seq = 0;  ///< next ring seq to drain
        std::uint64_t floor_seq = 0; ///< oldest seq this shipper can serve
        /** monotonicNs() when the credit window first gated this tuple;
         *  0 while draining. The span until the window reopens is one
         *  credit_stall histogram sample. */
        std::uint64_t stall_since_ns = 0;
    };

    /** A serialized frame kept until every session credits past it. */
    struct PendingFrame {
        std::uint32_t tuple = 0;
        std::uint64_t seq = 0;
        std::uint32_t count = 0;
        std::vector<std::uint8_t> bytes; ///< header + body, wire-ready
    };

    /** One receiver's view of the stream. */
    struct PeerSession {
        std::uint64_t receiver_id = 0;
        int socket_fd = -1;
        bool link_up = false;
        std::uint64_t sent[core::kMaxTuples] = {};  ///< next seq to send
        std::uint64_t acked[core::kMaxTuples] = {}; ///< credited cursor
        std::vector<std::uint8_t> outbox; ///< bytes the socket refused
        std::size_t outbox_head = 0;      ///< consumed prefix of outbox
    };

    /** The live `Tuning` knob values in force right now (clamped to
     *  this shipper's own hard limits). */
    std::size_t liveShipBatch() const;
    std::size_t liveCreditWindow() const;
    /** Eviction threshold derived from the live credit window unless
     *  Options::retain_limit was set explicitly. */
    std::size_t liveRetainLimit() const;

    /** Broadcast an unsolicited Status frame to every live peer when
     *  the push interval elapsed (Options::status_push_ns). */
    void maybePushStatus();

    std::size_t drainTuple(std::uint32_t tuple);
    /** Send buffered frames to every live peer whose window is open. */
    void fanOut();
    void sendBacklog(PeerSession &peer);
    /** Queue wire-ready bytes to @p peer (non-blocking; socket first,
     *  outbox overflow second). @return false when the outbox cap is
     *  hit — the caller must not advance its cursor. */
    bool queueBytes(PeerSession &peer, const std::uint8_t *data,
                    std::size_t len);
    /** Flush the peer's outbox as far as the socket accepts. */
    void flushOutbox(PeerSession &peer);
    void handlePeerInput(int fd);
    void handleCredits(PeerSession &peer, const FrameHeader &header);
    /** Answer a status request: assemble a core::StatusReport from the
     *  shared region plus this shipper's own statistics and send it as
     *  a Status frame (the coordinator status RPC). */
    void serveStatusRequest(PeerSession &peer);
    /** Retire buffered frames every session has credited, advancing
     *  the per-tuple cursor floor. */
    void retireAcked();
    /** Drop sessions whose lag exceeds retain_limit. */
    void evictStragglers();
    PeerSession *peerByFd(int fd);
    /** Highest credited cursor among live sessions — the drain gate
     *  (falls back to all sessions when no link is up, so a sole
     *  disconnected peer keeps its reconnect-retransmit window). */
    std::uint64_t fastestAcked(std::uint32_t tuple) const;
    /** Any tuple ring with events the tap has not drained yet? */
    bool ringBacklog();
    /** Any live peer with drained frames not yet on the wire? */
    bool unsentBacklog();
    /** Ship all remaining ring events, waiting (bounded) for credits
     *  when the window closes — the shutdown tail must not truncate. */
    void drainRemaining();
    void pumpLoop();
    Status sendHello(int socket_fd);
    void dropPeerLink(PeerSession &peer);
    void refreshLinkUp();

    const shmem::Region *region_;
    const core::EngineLayout *layout_;
    Options options_;
    core::TuningBlock *tuning_ = nullptr;
    bool retain_explicit_ = false;
    std::uint64_t last_status_push_ns_ = 0;
    std::atomic<bool> link_up_{false};
    std::atomic<bool> stopping_{false};
    std::thread thread_;
    netio::EventLoop loop_;

    TupleShip tuples_[core::kMaxTuples];
    std::vector<std::unique_ptr<PeerSession>> peers_;
    std::deque<PendingFrame> unacked_;
    ErrorBody last_error_ = {};
    mutable std::mutex mutex_; ///< guards tuples_/peers_/unacked_/stats_
    Stats stats_;
};

} // namespace varan::wire

#endif // VARAN_WIRE_SHIPPER_H
