/**
 * @file
 * Leader-node side of multi-node event shipping.
 *
 * A Shipper attaches tap consumer slots to every tuple ring (exactly
 * like the record-replay recorder) and streams the leader's event
 * history to a remote Receiver over a connected socket. Batching is
 * DMON-style relaxed: events are drained with peekBatch() — one head
 * acquire per run — serialized into Events frames of up to
 * `ship_batch` events (payload bytes inlined behind the event array)
 * and written with one writev() per claimed chunk through a
 * netio::EventLoop that also delivers the receiver's Credit frames.
 *
 * Flow control is credit-based: at most `credit_window` events per
 * tuple may be unacknowledged; beyond that the shipper leaves events
 * in the ring, which eventually gates the leader — remote backpressure
 * propagates exactly like a slow local follower. Shipped-but-unacked
 * frames are kept in a retransmit buffer, so a link drop mid-batch is
 * survivable: reconnect() re-handshakes, learns the receiver's
 * per-tuple resume cursors from the HelloAck, drops what already
 * landed and retransmits the rest — at-least-once delivery with
 * receiver-side dedup, never a hole.
 */

#ifndef VARAN_WIRE_SHIPPER_H
#define VARAN_WIRE_SHIPPER_H

#include <atomic>
#include <deque>
#include <mutex>
#include <thread>
#include <vector>

#include "core/layout.h"
#include "netio/eventloop.h"
#include "wire/protocol.h"

namespace varan::wire {

class Shipper
{
  public:
    /** Largest supported ship batch (events per Events frame). */
    static constexpr std::size_t kMaxShipBatch = 64;

    struct Options {
        /** Max events per Events frame (the ship batch of section-style
         *  "relaxed synchronization"): 1 degenerates to per-event
         *  shipping, 16-64 amortize framing + writev cost. Clamped to
         *  [1, kMaxShipBatch]. */
        std::size_t ship_batch = 16;
        /** Max unacknowledged events per tuple before shipping pauses
         *  (bounds the retransmit buffer and remote run-ahead). */
        std::size_t credit_window = 4096;
        /** Pump tick while idle (ms). */
        int tick_ms = 20;
    };

    struct Stats {
        std::uint64_t frames = 0;
        std::uint64_t events = 0;
        std::uint64_t bytes = 0;
        std::uint64_t payload_bytes = 0;
        std::uint64_t credits_received = 0;
        std::uint64_t retransmitted_frames = 0;
        std::uint64_t reconnects = 0;
        std::uint64_t status_requests_served = 0; ///< status RPC replies
    };

    Shipper(const shmem::Region *region, const core::EngineLayout *layout,
            Options options);
    Shipper(const shmem::Region *region, const core::EngineLayout *layout)
        : Shipper(region, layout, Options())
    {
    }
    ~Shipper();

    VARAN_NO_COPY_NO_MOVE(Shipper);

    /** Attach a tap consumer slot on every tuple ring. Must run before
     *  the leader starts publishing (pre-spawn hook) so no event is
     *  missed. */
    Status attachTaps();

    /** Adopt a connected socket: send Hello (geometry + pool stats),
     *  await HelloAck, adopt the receiver's resume cursors. */
    Status handshake(int socket_fd);

    /** Failover path: adopt a replacement socket after a link drop,
     *  re-handshake, and retransmit everything past the receiver's
     *  resume cursors. */
    Status reconnect(int socket_fd);

    /** Start the background pump thread. */
    void start();

    /** Drain what is left in the rings, send Bye, stop the pump, and
     *  detach the taps. */
    Status finish();

    /** One synchronous pump pass (tests and benches drive this
     *  directly): handle pending credits, drain every ring once, write
     *  out what fits. @return events shipped this pass. */
    std::size_t pumpOnce();

    /** True while the socket is usable. */
    bool linkUp() const { return link_up_.load(std::memory_order_acquire); }

    Stats stats() const;

    /** Fill a StatusReport's shipper section from a Stats snapshot —
     *  the one mapping used by both Nvx::status() and the wire Status
     *  RPC reply, so local and remote reports can never disagree. */
    static void fillWireStatus(core::ShipperWireStatus &out,
                               const Stats &stats, bool link_up);

  private:
    struct TupleShip {
        int tap_slot = -1;
        std::uint64_t next_seq = 0;  ///< next ring seq to drain
        std::uint64_t acked = 0;     ///< receiver-confirmed cursor
    };

    /** A serialized frame kept until the receiver credits past it. */
    struct PendingFrame {
        std::uint32_t tuple = 0;
        std::uint64_t seq = 0;
        std::uint32_t count = 0;
        std::vector<std::uint8_t> bytes; ///< header + body, wire-ready
    };

    std::size_t drainTuple(std::uint32_t tuple);
    bool writeFrame(const PendingFrame &frame);
    void handleCredits();
    /** Answer a status request: assemble a core::StatusReport from the
     *  shared region plus this shipper's own statistics and send it as
     *  a Status frame (the coordinator status RPC). */
    void serveStatusRequest();
    /** Any tuple ring with events the tap has not drained yet? */
    bool ringBacklog();
    /** Ship all remaining ring events, waiting (bounded) for credits
     *  when the window closes — the shutdown tail must not truncate. */
    void drainRemaining();
    void pumpLoop();
    Status sendHello(FrameType type);
    void dropLink();

    const shmem::Region *region_;
    const core::EngineLayout *layout_;
    Options options_;
    int socket_fd_ = -1;
    std::atomic<bool> link_up_{false};
    std::atomic<bool> stopping_{false};
    std::thread thread_;
    netio::EventLoop loop_;

    TupleShip tuples_[core::kMaxTuples];
    std::deque<PendingFrame> unacked_;
    mutable std::mutex mutex_; ///< guards tuples_/unacked_/stats_/socket
    Stats stats_;
};

} // namespace varan::wire

#endif // VARAN_WIRE_SHIPPER_H
