/**
 * @file
 * Remote-node side of multi-node event shipping — and, since protocol
 * v3, the cross-node failover path.
 *
 * A Receiver owns the socket end facing a Shipper and re-materializes
 * the incoming frame stream into a *local* engine layout: events are
 * republished into the local tuple rings through the same two-phase
 * claim()/commit() + payload-shadow protocol the leader uses, and
 * payload frames are re-hosted in the local ShardedPool arena of the
 * publishing tuple. A follower running against this layout (an
 * external-leader engine, exactly like record-replay) consumes the
 * remote stream through the completely unmodified dispatchFollower()
 * loop — divergence detection, payload application and Lamport-clock
 * ordering all behave as if the leader were local. Descriptor
 * transfers are virtualised (the kFdTransfer flag is cleared) since no
 * data channel spans nodes; remote followers replay descriptor numbers
 * only, like replayed logs do.
 *
 * Epoch reconciliation (v3): every adopt() compares the shipper's
 * (engine_epoch, stream_generation) stamp against what this receiver
 * last reconciled. A *newer* generation is a cross-node promotion
 * upstream — the receiver rebases onto it, keeping its materialized
 * prefix and resume cursors (the promoted leader continues the same
 * logical stream). A *stale* stamp — a resurrected pre-failover leader
 * — is rejected with a decodable Error frame before anything streams,
 * so a receiver that outlives several leader generations can never
 * double-apply. The adopted stamp is mirrored into the local control
 * block, so collectStatus() on the receiving node reports the stream
 * it actually consumes.
 *
 * Cross-node promotion: with Options::promote_after_ns set, a link
 * that stays down (or a leader that stops answering the Status-RPC
 * liveness probe) past the deadline triggers promotion — the receiver
 * elects the lowest live LeaderCandidate variant of its local engine,
 * bumps epoch and stream generation, and stores the new leader_id;
 * the elected variant's Monitor notices and switches to leader
 * dispatch once its replay backlog drains (the exact section 5.1
 * machinery, across nodes). Descriptors were re-established locally
 * all along: followers *execute* descriptor-creating calls and mirror
 * numbers, so the promoted leader already owns live descriptors for
 * everything it replayed. If standby peers are configured, the
 * receiver then starts its own Shipper (taps attached *before* the
 * election, so the promoted stream is complete from its first event)
 * toward the surviving nodes, with the bumped generation in its
 * Hello. External effects between the dead leader's last shipped
 * frame and the promotion are re-executed by the new leader —
 * the same at-least-once window as local publish coalescing,
 * documented in docs/ARCHITECTURE.md.
 *
 * Duplicate suppression makes the link at-least-once-safe: the
 * receiver tracks the next expected ring sequence per tuple, drops the
 * already-delivered prefix of retransmitted frames, and reports its
 * cursors in every HelloAck, so a shipper reconnecting after a
 * mid-batch link drop resumes without loss or duplication.
 *
 * Credits are batched and sent at externally-visible points — frames
 * containing descriptor-creating, fork or exit events — and every
 * `credit_every` events otherwise (DMON-style relaxed acking).
 */

#ifndef VARAN_WIRE_RECEIVER_H
#define VARAN_WIRE_RECEIVER_H

#include <atomic>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "core/layout.h"
#include "quorum/lease.h"
#include "rr/log.h"
#include "wire/protocol.h"
#include "wire/shipper.h"

namespace varan::wire {

class Receiver
{
  public:
    struct Options {
        /** Send a Credit frame at least every this many events. */
        std::size_t credit_every = 64;
        /** Poll tick while waiting for frames (ms). */
        int tick_ms = 20;
        /** Ring-publish deadline before the link is dropped (ns). */
        std::uint64_t publish_timeout_ns = core::kPublishStallNs;
        /**
         * Cross-node failover deadline: when the link is down (or the
         * leader stops answering the Status-RPC liveness probe) for
         * this long without a successful re-adopt, the receiver
         * promotes its local engine to leader. 0 disables promotion
         * (default — an observer stays an observer). Must be shorter
         * than the follower progress timeout or the variants panic
         * before the takeover.
         */
        std::uint64_t promote_after_ns = 0;
        /** Abstract-socket endpoints of surviving receiver nodes; on
         *  promotion the new leader starts a Shipper toward each (a
         *  connect failure is logged, not fatal — a dead standby just
         *  misses the new stream). */
        std::vector<std::string> standby_peers;
        /** Options for the post-promotion shipper. */
        Shipper::Options promoted_ship;
        /**
         * The quorum control plane (v6): this receiver's identity and
         * the full standby membership. When configured (valid()), the
         * promotion path must first win a lease from a quorum of the
         * membership — every receiver may then safely arm
         * promote_after_ns, and a partitioned minority fences itself
         * (keeps buffering, refuses promotion, reports `fenced`)
         * instead of split-braining. Default-empty keeps the legacy
         * single-watchdog behavior.
         */
        quorum::Config quorum;
        /** Promotion completed: the bumped epoch and elected leader.
         *  Runs on the receiver's serve thread. */
        std::function<void(std::uint32_t epoch, std::uint32_t leader)>
            on_promote;
        /**
         * File-backed sink: when set, every event this receiver
         * publishes into its local rings is also appended to a
         * record-replay log (format v2, rr/log.h) at this path — the
         * continuous fleet-recording substrate: a remote node both
         * follows the stream and keeps a replayable capture of it.
         * Opened at the first successful adopt(); a write failure
         * latches Stats::log_errno and stops the capture without
         * touching the live link.
         */
        std::string record_path;
    };

    struct Stats {
        std::uint64_t frames = 0;
        std::uint64_t events = 0;
        std::uint64_t payload_bytes = 0;
        std::uint64_t duplicates_dropped = 0;
        std::uint64_t corrupt_frames = 0;
        std::uint64_t credits_sent = 0;
        std::uint64_t reconnects = 0;
        std::uint64_t status_requests = 0; ///< status RPCs sent
        std::uint64_t status_reports = 0;  ///< status replies decoded
        std::uint64_t errors_sent = 0;     ///< stale peers rejected
        std::uint64_t errors_received = 0; ///< rejections from shippers
        std::uint64_t rebases = 0;         ///< generations adopted
        std::uint64_t logged_events = 0;   ///< records in the file sink
        std::uint64_t divergence_records_sent = 0; ///< relayed upstream
        std::int32_t log_errno = 0;        ///< first file-sink failure
    };

    Receiver(const shmem::Region *region, const core::EngineLayout *layout,
             Options options);
    Receiver(const shmem::Region *region, const core::EngineLayout *layout)
        : Receiver(region, layout, Options())
    {
    }
    ~Receiver();

    VARAN_NO_COPY_NO_MOVE(Receiver);

    /** Adopt a connected socket: await the shipper's Hello, validate
     *  the geometry against the local layout and the epoch stamp
     *  against the last reconciled generation, reply with a HelloAck
     *  carrying this receiver's identity and per-tuple resume cursors.
     *  A stale shipper is answered with an Error frame and refused.
     *  Call again with a fresh socket after a link drop (failover). */
    Status adopt(int socket_fd);

    /** Start the background serve thread (also the promotion timer
     *  when promote_after_ns is set). */
    void start();

    /** Stop serving and send Bye. */
    Status finish();

    /** Read and apply frames until the link idles for @p timeout_ms.
     *  @return frames applied; -1 when the link dropped. */
    int serveOnce(int timeout_ms);

    bool linkUp() const { return link_up_.load(std::memory_order_acquire); }

    /** The shipper's handshake snapshot (geometry + epoch stamp +
     *  remote pool pressure). */
    const HelloBody &remoteHello() const { return hello_; }

    /**
     * The coordinator status RPC: send an empty-body Status frame to
     * the shipper. The reply — a full core::StatusReport of the
     * leader-node engine — arrives through the normal frame stream and
     * is retrievable with remoteStatus() once decoded. Doubles as the
     * liveness probe before cross-node promotion.
     */
    Status requestStatus();

    /** Copy out the newest decoded remote StatusReport.
     *  @return false while no report has arrived yet. */
    bool remoteStatus(core::StatusReport *out) const;

    /**
     * The *receiving node's* consolidated status: collectStatus() over
     * the local (external-leader) engine layout with this receiver's
     * wire section filled in — the counterpart of Nvx::status() on the
     * shipping node.
     */
    core::StatusReport localStatus() const;

    /** Next ring sequence expected for @p tuple (resume cursor). */
    std::uint64_t nextSeq(std::uint32_t tuple) const;

    /** This node took over leadership (promotion ran). */
    bool promoted() const
    {
        return promoted_.load(std::memory_order_acquire);
    }

    /** The shipper started at promotion toward the standby peers;
     *  nullptr before promotion or without standby_peers. */
    Shipper *promotedShipper() const { return promoted_shipper_.get(); }

    /** This node fenced itself off the quorum: it keeps buffering but
     *  refuses promotion until it rejoins the majority. Always false
     *  without a configured quorum. */
    bool fenced() const { return lease_ && lease_->fenced(); }

    /** The quorum lease manager; nullptr without a configured
     *  membership. Tests drive its split-phase election directly. */
    quorum::LeaseManager *leaseManager() const { return lease_.get(); }

    /** Force the promotion decision now (tests and operators; the
     *  serve thread calls this when the deadline passes).
     *  @return true if this call promoted the engine. */
    bool promoteNow();

    /** The last Error frame received from a shipper (zeroed code when
     *  none arrived). */
    ErrorBody lastError() const;

    Stats stats() const;

  private:
    bool readFrame();             ///< one frame; false = link down
    bool applyEvents(const FrameHeader &header,
                     std::vector<std::uint8_t> &body);
    /** Re-host one event's payload locally and virtualise its flags. */
    bool prepareEvent(std::uint32_t tuple, ring::Event &event,
                      const std::uint8_t *payload_bytes);
    /** Publish a prepared run with one claim/commit per ring chunk.
     *  @return events actually published (committed slots own their
     *  payloads; the caller must release the rest on shortfall). */
    std::size_t publishRun(std::uint32_t tuple, ring::Event *events,
                           std::size_t count);
    /** Release the local pool payloads of not-yet-published events. */
    void releasePrepared(ring::Event *events, std::size_t count);
    void sendCredit(std::uint32_t tuple);
    /** Reject the connecting shipper with a decodable Error frame. */
    void sendHandshakeError(int socket_fd, WireError code,
                            const HelloBody &hello);
    /** Election + epoch/generation bump + standby shipping. Caller
     *  holds mutex_. @return true when leadership was taken, with the
     *  bumped epoch and elected leader in the out-params. */
    bool promoteLocked(std::uint32_t *epoch_out,
                       std::uint32_t *leader_out);
    /** Relay local divergence-ledger records the upstream leader has
     *  not seen yet as one Divergence frame (v5). */
    void shipDivergences();
    void serveLoop();
    void dropLink();

    const shmem::Region *region_;
    const core::EngineLayout *layout_;
    Options options_;
    int socket_fd_ = -1;
    std::atomic<bool> link_up_{false};
    std::atomic<bool> stopping_{false};
    std::atomic<bool> promoted_{false};
    std::thread thread_;
    HelloBody hello_ = {};
    bool seen_hello_ = false;
    core::StatusReport remote_status_ = {};
    bool seen_status_ = false;
    ErrorBody last_error_ = {};
    std::uint64_t receiver_id_ = 0;
    /** The (epoch, generation) last reconciled against — the stamp a
     *  connecting shipper must match or beat. */
    std::uint32_t last_epoch_ = 0;
    std::uint32_t last_generation_ = 0;
    std::unique_ptr<Shipper> promoted_shipper_;
    /** The quorum control plane (Options::quorum); promotion gates on
     *  lease_->acquire() before any epoch/generation bump. */
    std::unique_ptr<quorum::LeaseManager> lease_;

    rr::LogWriter log_; ///< optional file sink (Options::record_path)

    /** Ledger records already relayed upstream (shipDivergences). */
    std::uint64_t ledger_ship_cursor_ = 0;

    std::uint64_t next_seq_[core::kMaxTuples] = {};
    std::uint64_t credited_[core::kMaxTuples] = {};
    /** Per tuple: deliveries since that tuple's last credit. A single
     *  shared counter would let a busy sibling keep resetting it and
     *  starve this tuple's credit — stalling the shipper's window and,
     *  through ring backpressure, the leader itself. */
    std::size_t uncredited_[core::kMaxTuples] = {};
    mutable std::mutex mutex_;
    Stats stats_;
};

} // namespace varan::wire

#endif // VARAN_WIRE_RECEIVER_H
