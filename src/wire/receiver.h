/**
 * @file
 * Remote-node side of multi-node event shipping.
 *
 * A Receiver owns the socket end facing a Shipper and re-materializes
 * the incoming frame stream into a *local* engine layout: events are
 * republished into the local tuple rings through the same two-phase
 * claim()/commit() + payload-shadow protocol the leader uses, and
 * payload frames are re-hosted in the local ShardedPool arena of the
 * publishing tuple. A follower running against this layout (an
 * external-leader engine, exactly like record-replay) consumes the
 * remote stream through the completely unmodified dispatchFollower()
 * loop — divergence detection, payload application and Lamport-clock
 * ordering all behave as if the leader were local. Descriptor
 * transfers are virtualised (the kFdTransfer flag is cleared) since no
 * data channel spans nodes; remote followers replay descriptor numbers
 * only, like replayed logs do.
 *
 * Duplicate suppression makes the link at-least-once-safe: the
 * receiver tracks the next expected ring sequence per tuple, drops the
 * already-delivered prefix of retransmitted frames, and reports its
 * cursors in every HelloAck, so a shipper reconnecting after a
 * mid-batch link drop resumes without loss or duplication.
 *
 * Credits are batched and sent at externally-visible points — frames
 * containing descriptor-creating, fork or exit events — and every
 * `credit_every` events otherwise (DMON-style relaxed acking).
 */

#ifndef VARAN_WIRE_RECEIVER_H
#define VARAN_WIRE_RECEIVER_H

#include <atomic>
#include <mutex>
#include <thread>
#include <vector>

#include "core/layout.h"
#include "wire/protocol.h"

namespace varan::wire {

class Receiver
{
  public:
    struct Options {
        /** Send a Credit frame at least every this many events. */
        std::size_t credit_every = 64;
        /** Poll tick while waiting for frames (ms). */
        int tick_ms = 20;
        /** Ring-publish deadline before the link is dropped (ns). */
        std::uint64_t publish_timeout_ns = core::kPublishStallNs;
    };

    struct Stats {
        std::uint64_t frames = 0;
        std::uint64_t events = 0;
        std::uint64_t payload_bytes = 0;
        std::uint64_t duplicates_dropped = 0;
        std::uint64_t corrupt_frames = 0;
        std::uint64_t credits_sent = 0;
        std::uint64_t reconnects = 0;
        std::uint64_t status_requests = 0; ///< status RPCs sent
        std::uint64_t status_reports = 0;  ///< status replies decoded
    };

    Receiver(const shmem::Region *region, const core::EngineLayout *layout,
             Options options);
    Receiver(const shmem::Region *region, const core::EngineLayout *layout)
        : Receiver(region, layout, Options())
    {
    }
    ~Receiver();

    VARAN_NO_COPY_NO_MOVE(Receiver);

    /** Adopt a connected socket: await the shipper's Hello, validate
     *  the geometry against the local layout, reply with a HelloAck
     *  carrying this receiver's per-tuple resume cursors. Call again
     *  with a fresh socket after a link drop (failover). */
    Status adopt(int socket_fd);

    /** Start the background serve thread. */
    void start();

    /** Stop serving and send Bye. */
    Status finish();

    /** Read and apply frames until the link idles for @p timeout_ms.
     *  @return frames applied; -1 when the link dropped. */
    int serveOnce(int timeout_ms);

    bool linkUp() const { return link_up_.load(std::memory_order_acquire); }

    /** The shipper's handshake snapshot (geometry + remote pool
     *  pressure) — the first brick of the coordinator status API. */
    const HelloBody &remoteHello() const { return hello_; }

    /**
     * The coordinator status RPC: send an empty-body Status frame to
     * the shipper. The reply — a full core::StatusReport of the
     * leader-node engine — arrives through the normal frame stream and
     * is retrievable with remoteStatus() once decoded.
     */
    Status requestStatus();

    /** Copy out the newest decoded remote StatusReport.
     *  @return false while no report has arrived yet. */
    bool remoteStatus(core::StatusReport *out) const;

    /**
     * The *receiving node's* consolidated status: collectStatus() over
     * the local (external-leader) engine layout with this receiver's
     * wire section filled in — the counterpart of Nvx::status() on the
     * shipping node.
     */
    core::StatusReport localStatus() const;

    /** Next ring sequence expected for @p tuple (resume cursor). */
    std::uint64_t nextSeq(std::uint32_t tuple) const;

    Stats stats() const;

  private:
    bool readFrame();             ///< one frame; false = link down
    bool applyEvents(const FrameHeader &header,
                     std::vector<std::uint8_t> &body);
    /** Re-host one event's payload locally and virtualise its flags. */
    bool prepareEvent(std::uint32_t tuple, ring::Event &event,
                      const std::uint8_t *payload_bytes);
    /** Publish a prepared run with one claim/commit per ring chunk.
     *  @return events actually published (committed slots own their
     *  payloads; the caller must release the rest on shortfall). */
    std::size_t publishRun(std::uint32_t tuple, ring::Event *events,
                           std::size_t count);
    /** Release the local pool payloads of not-yet-published events. */
    void releasePrepared(ring::Event *events, std::size_t count);
    void sendCredit(std::uint32_t tuple);
    void serveLoop();
    void dropLink();

    const shmem::Region *region_;
    const core::EngineLayout *layout_;
    Options options_;
    int socket_fd_ = -1;
    std::atomic<bool> link_up_{false};
    std::atomic<bool> stopping_{false};
    std::thread thread_;
    HelloBody hello_ = {};
    bool seen_hello_ = false;
    core::StatusReport remote_status_ = {};
    bool seen_status_ = false;

    std::uint64_t next_seq_[core::kMaxTuples] = {};
    std::uint64_t credited_[core::kMaxTuples] = {};
    /** Per tuple: deliveries since that tuple's last credit. A single
     *  shared counter would let a busy sibling keep resetting it and
     *  starve this tuple's credit — stalling the shipper's window and,
     *  through ring backpressure, the leader itself. */
    std::size_t uncredited_[core::kMaxTuples] = {};
    mutable std::mutex mutex_;
    Stats stats_;
};

} // namespace varan::wire

#endif // VARAN_WIRE_RECEIVER_H
