/**
 * @file
 * Logging and error-termination helpers.
 *
 * Follows the gem5 discipline: panic() is for internal invariant
 * violations (aborts, core-dumpable), fatal() is for unrecoverable
 * user/environment errors (clean exit(1)), warn()/inform() never stop
 * execution.
 */

#ifndef VARAN_COMMON_LOGGING_H
#define VARAN_COMMON_LOGGING_H

#include <cstdarg>
#include <cstdio>

namespace varan {

enum class LogLevel { Debug = 0, Info = 1, Warn = 2, Error = 3, Silent = 4 };

/** Set the minimum level that actually reaches stderr. */
void setLogLevel(LogLevel level);
LogLevel logLevel();

/** printf-style leveled logging; a '\n' is appended automatically. */
void logf(LogLevel level, const char *fmt, ...)
    __attribute__((format(printf, 2, 3)));

/** Informative message users should see but not worry about. */
void inform(const char *fmt, ...) __attribute__((format(printf, 1, 2)));

/** Something is off but execution can continue. */
void warn(const char *fmt, ...) __attribute__((format(printf, 1, 2)));

/** Unrecoverable user/environment error: message, then exit(1). */
[[noreturn]] void fatal(const char *fmt, ...)
    __attribute__((format(printf, 1, 2)));

/** Internal bug: message, then abort(). */
[[noreturn]] void panic(const char *fmt, ...)
    __attribute__((format(printf, 1, 2)));

} // namespace varan

/** Assert-like invariant check that survives NDEBUG builds. */
#define VARAN_CHECK(cond, ...) \
    do { \
        if (VARAN_UNLIKELY(!(cond))) { \
            ::varan::panic("check failed at %s:%d: %s", __FILE__, \
                           __LINE__, #cond); \
        } \
    } while (0)

/** Check a syscall-style return value, panicking with errno detail. */
#define VARAN_CHECK_ERRNO(expr) \
    do { \
        if (VARAN_UNLIKELY((expr) < 0)) { \
            ::varan::panic("%s failed at %s:%d: errno=%d", #expr, \
                           __FILE__, __LINE__, errno); \
        } \
    } while (0)

#include "common/macros.h"

#endif // VARAN_COMMON_LOGGING_H
