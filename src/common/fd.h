/**
 * @file
 * RAII wrappers for POSIX file descriptors and descriptor pairs.
 */

#ifndef VARAN_COMMON_FD_H
#define VARAN_COMMON_FD_H

#include <string>
#include <utility>

#include "common/macros.h"
#include "common/result.h"

namespace varan {

/**
 * Owning file descriptor. Closes on destruction; movable, not copyable.
 */
class Fd
{
  public:
    Fd() = default;
    explicit Fd(int fd) : fd_(fd) {}
    ~Fd() { reset(); }

    VARAN_NO_COPY(Fd);

    Fd(Fd &&other) noexcept : fd_(other.release()) {}

    Fd &
    operator=(Fd &&other) noexcept
    {
        if (this != &other) {
            reset();
            fd_ = other.release();
        }
        return *this;
    }

    int get() const { return fd_; }
    bool valid() const { return fd_ >= 0; }
    explicit operator bool() const { return valid(); }

    /** Give up ownership without closing. */
    int
    release()
    {
        return std::exchange(fd_, -1);
    }

    /** Close (if open) and optionally adopt a new descriptor. */
    void reset(int fd = -1);

    /** dup() this descriptor into a new owning Fd. */
    Result<Fd> duplicate() const;

    /** dup2() this descriptor onto target_fd, returning the new owner. */
    Result<Fd> duplicateTo(int target_fd) const;

  private:
    int fd_ = -1;
};

/**
 * A connected AF_UNIX SOCK_SEQPACKET/STREAM pair; end(0) and end(1) are
 * symmetric. Used for coordinator<->variant control and data channels.
 */
class SocketPair
{
  public:
    /** Create a connected pair; type is SOCK_STREAM or SOCK_SEQPACKET. */
    static Result<SocketPair> create(int type);

    SocketPair() = default;
    SocketPair(Fd a, Fd b) : a_(std::move(a)), b_(std::move(b)) {}

    Fd &end(int i) { return i == 0 ? a_ : b_; }
    /** Move one end out, e.g. to keep in a child after fork. */
    Fd takeEnd(int i) { return std::move(i == 0 ? a_ : b_); }

  private:
    Fd a_;
    Fd b_;
};

/** write() until all bytes are out or a real error occurs. */
Status writeAll(int fd, const void *buf, size_t len);

/** read() until len bytes are in, EOF (error EPIPE), or a real error. */
Status readAll(int fd, void *buf, size_t len);

/** Set or clear O_NONBLOCK. */
Status setNonBlocking(int fd, bool enable);

} // namespace varan

#endif // VARAN_COMMON_FD_H
