#include "common/futex.h"

#include <cerrno>
#include <ctime>
#include <linux/futex.h>
#include <sys/syscall.h>
#include <unistd.h>

namespace varan {

namespace {

long
sysFutex(const void *addr, int op, std::uint32_t val,
         const struct timespec *timeout)
{
    return ::syscall(SYS_futex, addr, op, val, timeout, nullptr, 0);
}

} // namespace

FutexResult
futexWait(const std::atomic<std::uint32_t> *addr, std::uint32_t expected,
          std::uint64_t timeout_ns)
{
    struct timespec ts;
    struct timespec *tsp = nullptr;
    if (timeout_ns > 0) {
        ts.tv_sec = static_cast<time_t>(timeout_ns / 1000000000ULL);
        ts.tv_nsec = static_cast<long>(timeout_ns % 1000000000ULL);
        tsp = &ts;
    }
    long rc = sysFutex(addr, FUTEX_WAIT, expected, tsp);
    if (rc == 0)
        return FutexResult::Woken;
    switch (errno) {
      case EAGAIN:
        return FutexResult::ValueChanged;
      case ETIMEDOUT:
        return FutexResult::TimedOut;
      case EINTR:
        return FutexResult::Interrupted;
      default:
        return FutexResult::Woken;
    }
}

int
futexWake(const std::atomic<std::uint32_t> *addr, int count)
{
    long rc = sysFutex(addr, FUTEX_WAKE, static_cast<std::uint32_t>(count),
                       nullptr);
    return rc < 0 ? 0 : static_cast<int>(rc);
}

} // namespace varan
