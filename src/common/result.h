/**
 * @file
 * Minimal expected-style result type carrying an errno code on failure.
 *
 * C++20 lacks std::expected; this is the small subset VARAN needs. An
 * Errno of 0 means success.
 */

#ifndef VARAN_COMMON_RESULT_H
#define VARAN_COMMON_RESULT_H

#include <cerrno>
#include <cstring>
#include <string>
#include <utility>
#include <variant>

#include "common/logging.h"

namespace varan {

/** Error wrapper so Result<int> can distinguish value from error. */
struct Errno {
    int code = 0;

    std::string
    message() const
    {
        return std::strerror(code);
    }

    bool operator==(const Errno &) const = default;
};

/** Value-or-errno. Default construction is not provided on purpose. */
template <typename T>
class Result
{
  public:
    Result(T value) : repr_(std::move(value)) {}
    Result(Errno err) : repr_(err) {}

    bool ok() const { return std::holds_alternative<T>(repr_); }
    explicit operator bool() const { return ok(); }

    /** Access the value; panics when called on an error. */
    T &
    value()
    {
        VARAN_CHECK(ok());
        return std::get<T>(repr_);
    }

    const T &
    value() const
    {
        VARAN_CHECK(ok());
        return std::get<T>(repr_);
    }

    /** Access the error; panics when called on a success. */
    Errno
    error() const
    {
        VARAN_CHECK(!ok());
        return std::get<Errno>(repr_);
    }

    T
    valueOr(T fallback) const
    {
        return ok() ? std::get<T>(repr_) : std::move(fallback);
    }

  private:
    std::variant<T, Errno> repr_;
};

/** Result for operations that return no value. */
class Status
{
  public:
    Status() = default;
    Status(Errno err) : err_(err) {}

    static Status ok() { return Status(); }
    static Status fromErrno() { return Status(Errno{errno}); }

    bool isOk() const { return err_.code == 0; }
    explicit operator bool() const { return isOk(); }
    Errno error() const { return err_; }

  private:
    Errno err_{};
};

/** Build a Result<T> error from the current errno. */
template <typename T>
Result<T>
errnoResult()
{
    return Result<T>(Errno{errno});
}

} // namespace varan

#endif // VARAN_COMMON_RESULT_H
