#include "common/fd.h"

#include <fcntl.h>
#include <sys/socket.h>
#include <unistd.h>

namespace varan {

void
Fd::reset(int fd)
{
    if (fd_ >= 0)
        ::close(fd_);
    fd_ = fd;
}

Result<Fd>
Fd::duplicate() const
{
    int nfd = ::fcntl(fd_, F_DUPFD_CLOEXEC, 0);
    if (nfd < 0)
        return errnoResult<Fd>();
    return Fd(nfd);
}

Result<Fd>
Fd::duplicateTo(int target_fd) const
{
    int nfd = ::dup2(fd_, target_fd);
    if (nfd < 0)
        return errnoResult<Fd>();
    return Fd(nfd);
}

Result<SocketPair>
SocketPair::create(int type)
{
    int sv[2];
    if (::socketpair(AF_UNIX, type, 0, sv) < 0)
        return errnoResult<SocketPair>();
    return SocketPair(Fd(sv[0]), Fd(sv[1]));
}

Status
writeAll(int fd, const void *buf, size_t len)
{
    const char *p = static_cast<const char *>(buf);
    while (len > 0) {
        ssize_t n = ::write(fd, p, len);
        if (n < 0) {
            if (errno == EINTR)
                continue;
            return Status::fromErrno();
        }
        p += n;
        len -= static_cast<size_t>(n);
    }
    return Status::ok();
}

Status
readAll(int fd, void *buf, size_t len)
{
    char *p = static_cast<char *>(buf);
    while (len > 0) {
        ssize_t n = ::read(fd, p, len);
        if (n < 0) {
            if (errno == EINTR)
                continue;
            return Status::fromErrno();
        }
        if (n == 0)
            return Status(Errno{EPIPE});
        p += n;
        len -= static_cast<size_t>(n);
    }
    return Status::ok();
}

Status
setNonBlocking(int fd, bool enable)
{
    int flags = ::fcntl(fd, F_GETFL, 0);
    if (flags < 0)
        return Status::fromErrno();
    if (enable)
        flags |= O_NONBLOCK;
    else
        flags &= ~O_NONBLOCK;
    if (::fcntl(fd, F_SETFL, flags) < 0)
        return Status::fromErrno();
    return Status::ok();
}

} // namespace varan
