#include "common/logging.h"

#include <atomic>
#include <cstdlib>
#include <unistd.h>

namespace varan {

namespace {

std::atomic<LogLevel> g_level{LogLevel::Warn};

const char *
levelTag(LogLevel level)
{
    switch (level) {
      case LogLevel::Debug: return "debug";
      case LogLevel::Info: return "info";
      case LogLevel::Warn: return "warn";
      case LogLevel::Error: return "error";
      default: return "?";
    }
}

void
vlogf(LogLevel level, const char *fmt, va_list ap)
{
    if (level < g_level.load(std::memory_order_relaxed))
        return;
    char buf[1024];
    int off = std::snprintf(buf, sizeof(buf), "varan[%d] %s: ",
                            static_cast<int>(::getpid()), levelTag(level));
    if (off < 0)
        return;
    int n = std::vsnprintf(buf + off, sizeof(buf) - off - 1, fmt, ap);
    if (n < 0)
        return;
    std::size_t len = std::min(sizeof(buf) - 2,
                               static_cast<std::size_t>(off + n));
    buf[len] = '\n';
    // Single write keeps lines atomic across the many processes VARAN runs.
    [[maybe_unused]] ssize_t rc = ::write(STDERR_FILENO, buf, len + 1);
}

} // namespace

void
setLogLevel(LogLevel level)
{
    g_level.store(level, std::memory_order_relaxed);
}

LogLevel
logLevel()
{
    return g_level.load(std::memory_order_relaxed);
}

void
logf(LogLevel level, const char *fmt, ...)
{
    va_list ap;
    va_start(ap, fmt);
    vlogf(level, fmt, ap);
    va_end(ap);
}

void
inform(const char *fmt, ...)
{
    va_list ap;
    va_start(ap, fmt);
    vlogf(LogLevel::Info, fmt, ap);
    va_end(ap);
}

void
warn(const char *fmt, ...)
{
    va_list ap;
    va_start(ap, fmt);
    vlogf(LogLevel::Warn, fmt, ap);
    va_end(ap);
}

void
fatal(const char *fmt, ...)
{
    va_list ap;
    va_start(ap, fmt);
    vlogf(LogLevel::Error, fmt, ap);
    va_end(ap);
    std::exit(1);
}

void
panic(const char *fmt, ...)
{
    va_list ap;
    va_start(ap, fmt);
    vlogf(LogLevel::Error, fmt, ap);
    va_end(ap);
    std::abort();
}

} // namespace varan
