#include "common/fdpass.h"

#include <cstring>
#include <sys/socket.h>

namespace varan {

Status
sendFd(int sock, int fd, std::uint64_t tag)
{
    struct msghdr msg = {};
    struct iovec iov;
    iov.iov_base = &tag;
    iov.iov_len = sizeof(tag);
    msg.msg_iov = &iov;
    msg.msg_iovlen = 1;

    alignas(struct cmsghdr) char cbuf[CMSG_SPACE(sizeof(int))] = {};
    msg.msg_control = cbuf;
    msg.msg_controllen = sizeof(cbuf);

    struct cmsghdr *cm = CMSG_FIRSTHDR(&msg);
    cm->cmsg_level = SOL_SOCKET;
    cm->cmsg_type = SCM_RIGHTS;
    cm->cmsg_len = CMSG_LEN(sizeof(int));
    std::memcpy(CMSG_DATA(cm), &fd, sizeof(int));

    for (;;) {
        ssize_t n = ::sendmsg(sock, &msg, MSG_NOSIGNAL);
        if (n >= 0)
            return Status::ok();
        if (errno != EINTR)
            return Status::fromErrno();
    }
}

Result<ReceivedFd>
recvFd(int sock)
{
    std::uint64_t tag = 0;
    struct msghdr msg = {};
    struct iovec iov;
    iov.iov_base = &tag;
    iov.iov_len = sizeof(tag);
    msg.msg_iov = &iov;
    msg.msg_iovlen = 1;

    alignas(struct cmsghdr) char cbuf[CMSG_SPACE(sizeof(int))] = {};
    msg.msg_control = cbuf;
    msg.msg_controllen = sizeof(cbuf);

    for (;;) {
        ssize_t n = ::recvmsg(sock, &msg, 0);
        if (n < 0) {
            if (errno == EINTR)
                continue;
            return errnoResult<ReceivedFd>();
        }
        if (n == 0)
            return Result<ReceivedFd>(Errno{EPIPE});
        break;
    }

    struct cmsghdr *cm = CMSG_FIRSTHDR(&msg);
    if (!cm || cm->cmsg_level != SOL_SOCKET || cm->cmsg_type != SCM_RIGHTS)
        return Result<ReceivedFd>(Errno{EPROTO});

    int fd = -1;
    std::memcpy(&fd, CMSG_DATA(cm), sizeof(int));
    ReceivedFd out;
    out.fd = Fd(fd);
    out.tag = tag;
    return out;
}

} // namespace varan
