/**
 * @file
 * Foundational macros and constants shared by every VARAN module.
 */

#ifndef VARAN_COMMON_MACROS_H
#define VARAN_COMMON_MACROS_H

#include <cstddef>

namespace varan {

/** Cache line size assumed throughout (x86-64). Events are sized to it. */
inline constexpr std::size_t kCacheLineSize = 64;

} // namespace varan

#define VARAN_LIKELY(x) __builtin_expect(!!(x), 1)
#define VARAN_UNLIKELY(x) __builtin_expect(!!(x), 0)

/** Delete copy operations; the class remains movable if it says so. */
#define VARAN_NO_COPY(Cls) \
    Cls(const Cls &) = delete; \
    Cls &operator=(const Cls &) = delete

/** Delete both copy and move operations. */
#define VARAN_NO_COPY_NO_MOVE(Cls) \
    VARAN_NO_COPY(Cls); \
    Cls(Cls &&) = delete; \
    Cls &operator=(Cls &&) = delete

#endif // VARAN_COMMON_MACROS_H
