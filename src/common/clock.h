/**
 * @file
 * Time sources: cycle counter (rdtsc) for microbenchmarks and a
 * monotonic nanosecond clock for deadlines and throughput measurement.
 */

#ifndef VARAN_COMMON_CLOCK_H
#define VARAN_COMMON_CLOCK_H

#include <cstdint>

namespace varan {

/** Serialising read of the time-stamp counter (as the paper's Fig. 4). */
inline std::uint64_t
rdtsc()
{
    std::uint32_t lo, hi;
    asm volatile("lfence\n\trdtsc" : "=a"(lo), "=d"(hi) :: "memory");
    return (static_cast<std::uint64_t>(hi) << 32) | lo;
}

/** CLOCK_MONOTONIC in nanoseconds. */
std::uint64_t monotonicNs();

/** CLOCK_REALTIME in nanoseconds (used by the virtual-time syscalls). */
std::uint64_t realtimeNs();

/** Simple start/stop cycle stopwatch. */
class CycleTimer
{
  public:
    void start() { begin_ = rdtsc(); }
    std::uint64_t stop() const { return rdtsc() - begin_; }

  private:
    std::uint64_t begin_ = 0;
};

/** Sleep the calling thread for the given nanoseconds (EINTR-safe). */
void sleepNs(std::uint64_t ns);

} // namespace varan

#endif // VARAN_COMMON_CLOCK_H
