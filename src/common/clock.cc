#include "common/clock.h"

#include <cerrno>
#include <ctime>

namespace varan {

namespace {

std::uint64_t
readClock(clockid_t id)
{
    struct timespec ts;
    ::clock_gettime(id, &ts);
    return static_cast<std::uint64_t>(ts.tv_sec) * 1000000000ULL +
           static_cast<std::uint64_t>(ts.tv_nsec);
}

} // namespace

std::uint64_t
monotonicNs()
{
    return readClock(CLOCK_MONOTONIC);
}

std::uint64_t
realtimeNs()
{
    return readClock(CLOCK_REALTIME);
}

void
sleepNs(std::uint64_t ns)
{
    struct timespec req;
    req.tv_sec = static_cast<time_t>(ns / 1000000000ULL);
    req.tv_nsec = static_cast<long>(ns % 1000000000ULL);
    while (::nanosleep(&req, &req) < 0 && errno == EINTR) {
        // keep sleeping the remainder
    }
}

} // namespace varan
