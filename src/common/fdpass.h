/**
 * @file
 * File-descriptor passing over UNIX domain sockets (SCM_RIGHTS).
 *
 * This is the paper's "data channel" primitive (section 3.3.2): whenever
 * the leader obtains a new descriptor it duplicates it into every
 * follower so a promoted leader can keep serving live connections.
 */

#ifndef VARAN_COMMON_FDPASS_H
#define VARAN_COMMON_FDPASS_H

#include <cstdint>

#include "common/fd.h"
#include "common/result.h"

namespace varan {

/**
 * Send one descriptor plus an 8-byte tag over a UNIX socket.
 *
 * @param sock connected AF_UNIX socket.
 * @param fd descriptor to duplicate into the peer process.
 * @param tag application-defined value (VARAN uses the leader's fd number
 *            so the follower can mirror it with dup2).
 */
Status sendFd(int sock, int fd, std::uint64_t tag);

/** Result of recvFd: the received descriptor and the sender's tag. */
struct ReceivedFd {
    Fd fd;
    std::uint64_t tag = 0;
};

/** Receive one descriptor+tag sent by sendFd(). Blocks. */
Result<ReceivedFd> recvFd(int sock);

} // namespace varan

#endif // VARAN_COMMON_FDPASS_H
