/**
 * @file
 * Thin futex wrappers used by the shared-memory wait primitives
 * (waitlocks, section 3.3.1) and the pool allocator locks.
 *
 * All addresses must live in memory shared between the waiting and the
 * waking process (MAP_SHARED); VARAN always uses process-shared futexes.
 */

#ifndef VARAN_COMMON_FUTEX_H
#define VARAN_COMMON_FUTEX_H

#include <atomic>
#include <cstdint>

namespace varan {

/** Outcome of a timed futex wait. */
enum class FutexResult {
    Woken,      ///< FUTEX_WAKE arrived (or spurious wake)
    ValueChanged, ///< *addr != expected at syscall entry (EAGAIN)
    TimedOut,   ///< deadline expired
    Interrupted ///< EINTR
};

/**
 * Wait until *addr != expected or a wake arrives.
 *
 * @param addr futex word in shared memory.
 * @param expected value the word must still hold for the wait to sleep.
 * @param timeout_ns relative timeout; 0 means wait forever.
 */
FutexResult futexWait(const std::atomic<std::uint32_t> *addr,
                      std::uint32_t expected, std::uint64_t timeout_ns);

/** Wake up to @p count waiters; returns the number actually woken. */
int futexWake(const std::atomic<std::uint32_t> *addr, int count);

} // namespace varan

#endif // VARAN_COMMON_FUTEX_H
