/**
 * @file
 * Orchestration for server benchmarks: run a server natively, under
 * the VARAN engine with N followers, or under the lockstep baseline;
 * drive it with a workload; shut it down; report throughput.
 */

#ifndef VARAN_BENCHUTIL_HARNESS_H
#define VARAN_BENCHUTIL_HARNESS_H

#include <functional>
#include <string>

#include "benchutil/drivers.h"
#include "core/nvx.h"
#include "lockstep/lockstep.h"

namespace varan::bench {

/** A server under test + its workload + its shutdown knock. */
struct ServerCase {
    std::string name;
    std::function<int()> server;        ///< variant entry point
    std::function<LoadResult()> workload;
    std::function<void()> shutdown;
};

/** Run the server in a plain forked process (no monitor at all). */
LoadResult runNative(const ServerCase &c);

/** Run under the event-streaming engine with @p followers followers. */
LoadResult runNvx(const ServerCase &c, int followers,
                  core::EngineConfig config = {});

/** Run under the centralised lockstep baseline with @p variants. */
LoadResult runLockstep(const ServerCase &c, int variants);

/** Normalised overhead: denominator guarded. */
inline double
overhead(double native_ops, double monitored_ops)
{
    return monitored_ops > 0 ? native_ops / monitored_ops : 0;
}

/** Scale factors for quick runs: VARAN_BENCH_QUICK=1 shrinks loads. */
bool quickMode();
int scaled(int full, int quick);

/**
 * Ignore SIGPIPE process-wide (idempotent). Bench workloads tear
 * servers down while requests are in flight, so writes into
 * half-closed sockets are routine; with the default disposition one
 * such write kills the whole bench with rc=141 before it can report.
 * With SIG_IGN the write returns EPIPE, which every driver already
 * treats as "peer gone". Every runNative/runNvx/runLockstep entry
 * installs this; forked servers inherit the disposition.
 */
void ignoreSigpipe();

} // namespace varan::bench

#endif // VARAN_BENCHUTIL_HARNESS_H
