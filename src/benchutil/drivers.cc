#include "benchutil/drivers.h"

#include <atomic>
#include <cstring>
#include <thread>

#include "benchutil/stats.h"
#include "common/clock.h"
#include "netio/socketio.h"
#include "syscalls/sys.h"

// Same GCC 12 -O3 -Wrestrict false positive as vstore.cc (bogus
// overlap bounds from fully-inlined libstdc++ string concatenation;
// the PR105329 family, fixed in GCC 13) — the memcached-style request
// builders in cacheBench() trip it under Release + -Werror.
#if defined(__GNUC__) && !defined(__clang__) && __GNUC__ == 12
#pragma GCC diagnostic ignored "-Wrestrict"
#endif

namespace varan::bench {

namespace {

/** One blocking request/response exchange; returns latency in us. */
double
exchange(int fd, const std::string &request, std::string *reply_out,
         const char *terminator)
{
    std::uint64_t t0 = monotonicNs();
    if (!netio::sendAll(fd, request.data(), request.size()).isOk())
        return -1;
    auto reply = netio::recvUntil(fd, terminator);
    if (!reply.ok() || reply.value().empty())
        return -1;
    if (reply_out)
        *reply_out = reply.value();
    return double(monotonicNs() - t0) / 1000.0;
}

struct WorkerTally {
    double ops = 0;
    std::vector<double> latencies;
    bool ok = true;
};

LoadResult
tally(std::vector<WorkerTally> &workers, double wall_seconds)
{
    LoadResult result;
    std::vector<double> latencies;
    for (auto &w : workers) {
        result.total_ops += w.ops;
        result.ok = result.ok || w.ok;
        latencies.insert(latencies.end(), w.latencies.begin(),
                         w.latencies.end());
        if (!w.ok)
            result.ok = false;
    }
    result.wall_seconds = wall_seconds;
    result.ops_per_sec =
        wall_seconds > 0 ? result.total_ops / wall_seconds : 0;
    result.latency_us_p50 = percentile(latencies, 50);
    result.latency_us_p99 = percentile(latencies, 99);
    return result;
}

} // namespace

LoadResult
kvBench(const std::string &endpoint, int clients, int requests_per_client)
{
    std::vector<WorkerTally> tallies(clients);
    std::uint64_t t0 = monotonicNs();
    std::vector<std::thread> threads;
    for (int c = 0; c < clients; ++c) {
        threads.emplace_back([&, c] {
            WorkerTally &mine = tallies[c];
            auto conn = netio::connectAbstract(endpoint);
            if (!conn.ok()) {
                mine.ok = false;
                return;
            }
            int fd = conn.value();
            mine.latencies.reserve(requests_per_client);
            // redis-benchmark's default mix across command types, with
            // per-client key ranges so variants never race on a key.
            for (int i = 0; i < requests_per_client; ++i) {
                std::string key =
                    "key:" + std::to_string(c) + ":" +
                    std::to_string(i % 100);
                std::string req;
                switch (i % 5) {
                  case 0:
                    req = "SET " + key + " value" + std::to_string(i) +
                          "\r\n";
                    break;
                  case 1:
                    req = "GET " + key + "\r\n";
                    break;
                  case 2:
                    req = "INCR counter:" + std::to_string(c) + "\r\n";
                    break;
                  case 3:
                    req = "LPUSH list:" + std::to_string(c) + " item" +
                          std::to_string(i) + "\r\n";
                    break;
                  default:
                    req = "PING\r\n";
                    break;
                }
                double us = exchange(fd, req, nullptr, "\r\n");
                if (us < 0) {
                    mine.ok = false;
                    break;
                }
                mine.latencies.push_back(us);
                mine.ops += 1;
            }
            sys::vclose(fd);
        });
    }
    for (auto &t : threads)
        t.join();
    return tally(tallies, double(monotonicNs() - t0) / 1e9);
}

LatencyProbe
kvCommandLatency(const std::string &endpoint, const std::string &command)
{
    LatencyProbe probe;
    auto conn = netio::connectAbstract(endpoint);
    if (!conn.ok())
        return probe;
    int fd = conn.value();
    std::string reply;
    double us = exchange(fd, command + "\r\n", &reply, "\r\n");
    sys::vclose(fd);
    if (us >= 0) {
        probe.us = us;
        probe.ok = true;
        probe.reply = reply;
    }
    return probe;
}

void
kvShutdown(const std::string &endpoint)
{
    auto conn = netio::connectAbstract(endpoint, 2000);
    if (!conn.ok())
        return;
    netio::sendAll(conn.value(), "SHUTDOWN\r\n", 10);
    netio::recvUntil(conn.value(), "\r\n");
    sys::vclose(conn.value());
}

void
queueShutdown(const std::string &endpoint)
{
    auto conn = netio::connectAbstract(endpoint, 2000);
    if (!conn.ok())
        return;
    netio::sendAll(conn.value(), "shutdown\r\n", 10);
    netio::recvUntil(conn.value(), "\r\n");
    sys::vclose(conn.value());
}

void
cacheShutdown(const std::string &endpoint)
{
    auto conn = netio::connectAbstract(endpoint, 2000);
    if (!conn.ok())
        return;
    netio::sendAll(conn.value(), "shutdown\r\n", 10);
    netio::recvUntil(conn.value(), "\r\n");
    sys::vclose(conn.value());
}

LoadResult
cacheBench(const std::string &endpoint, int clients, int initial_pairs,
           int ops_per_client)
{
    // memslap protocol: an initial load phase, then the timed mix.
    {
        auto conn = netio::connectAbstract(endpoint);
        if (!conn.ok())
            return {};
        int fd = conn.value();
        for (int i = 0; i < initial_pairs; ++i) {
            std::string key = "load:" + std::to_string(i);
            std::string data = "x" + std::to_string(i);
            std::string req = "set " + key + " 0 0 " +
                              std::to_string(data.size()) + "\r\n" +
                              data + "\r\n";
            if (exchange(fd, req, nullptr, "\r\n") < 0)
                break;
        }
        sys::vclose(fd);
    }

    std::vector<WorkerTally> tallies(clients);
    std::uint64_t t0 = monotonicNs();
    std::vector<std::thread> threads;
    for (int c = 0; c < clients; ++c) {
        threads.emplace_back([&, c] {
            WorkerTally &mine = tallies[c];
            auto conn = netio::connectAbstract(endpoint);
            if (!conn.ok()) {
                mine.ok = false;
                return;
            }
            int fd = conn.value();
            for (int i = 0; i < ops_per_client; ++i) {
                std::string key =
                    "load:" + std::to_string((c * 7919 + i * 13) % 1000);
                std::string req;
                const char *term;
                if (i % 10 == 0) {
                    std::string data = "v" + std::to_string(i);
                    req = "set " + key + " 0 0 " +
                          std::to_string(data.size()) + "\r\n" + data +
                          "\r\n";
                    term = "\r\n";
                } else {
                    req = "get " + key + "\r\n";
                    term = "END\r\n";
                }
                double us = exchange(fd, req, nullptr, term);
                if (us < 0) {
                    mine.ok = false;
                    break;
                }
                mine.latencies.push_back(us);
                mine.ops += 1;
            }
            sys::vclose(fd);
        });
    }
    for (auto &t : threads)
        t.join();
    return tally(tallies, double(monotonicNs() - t0) / 1e9);
}

LoadResult
httpBench(const std::string &endpoint, int connections,
          int requests_per_connection)
{
    std::vector<WorkerTally> tallies(connections);
    std::uint64_t t0 = monotonicNs();
    std::vector<std::thread> threads;
    for (int c = 0; c < connections; ++c) {
        threads.emplace_back([&, c] {
            WorkerTally &mine = tallies[c];
            auto conn = netio::connectAbstract(endpoint);
            if (!conn.ok()) {
                mine.ok = false;
                return;
            }
            int fd = conn.value();
            const std::string request =
                "GET /index.html HTTP/1.1\r\nHost: varan\r\n\r\n";
            for (int i = 0; i < requests_per_connection; ++i) {
                std::uint64_t r0 = monotonicNs();
                if (!netio::sendAll(fd, request.data(), request.size())
                         .isOk()) {
                    mine.ok = false;
                    break;
                }
                // Read headers, then the advertised body length.
                auto head = netio::recvUntil(fd, "\r\n\r\n");
                if (!head.ok() || head.value().empty()) {
                    mine.ok = false;
                    break;
                }
                std::string data = head.value();
                std::size_t cl = data.find("Content-Length: ");
                std::size_t body_len =
                    cl == std::string::npos
                        ? 0
                        : std::strtoul(data.c_str() + cl + 16, nullptr,
                                       10);
                std::size_t header_end = data.find("\r\n\r\n") + 4;
                std::size_t have = data.size() - header_end;
                while (have < body_len) {
                    auto more = netio::recvSome(fd, body_len - have);
                    if (!more.ok() || more.value().empty())
                        break;
                    have += more.value().size();
                }
                mine.latencies.push_back(double(monotonicNs() - r0) /
                                         1000.0);
                mine.ops += 1;
            }
            sys::vclose(fd);
        });
    }
    for (auto &t : threads)
        t.join();
    return tally(tallies, double(monotonicNs() - t0) / 1e9);
}

void
httpShutdown(const std::string &endpoint)
{
    auto conn = netio::connectAbstract(endpoint, 2000);
    if (!conn.ok())
        return;
    const std::string request =
        "GET /__shutdown HTTP/1.1\r\nHost: varan\r\n\r\n";
    netio::sendAll(conn.value(), request.data(), request.size());
    netio::recvUntil(conn.value(), "\r\n\r\n");
    sys::vclose(conn.value());
}

LoadResult
queueBench(const std::string &endpoint, int workers, int pushes_per_worker,
           int payload_bytes)
{
    std::vector<WorkerTally> tallies(workers);
    std::uint64_t t0 = monotonicNs();
    std::vector<std::thread> threads;
    const std::string payload(static_cast<std::size_t>(payload_bytes),
                              'j');
    for (int w = 0; w < workers; ++w) {
        threads.emplace_back([&, w] {
            WorkerTally &mine = tallies[w];
            auto conn = netio::connectAbstract(endpoint);
            if (!conn.ok()) {
                mine.ok = false;
                return;
            }
            int fd = conn.value();
            for (int i = 0; i < pushes_per_worker; ++i) {
                std::string put = "put 0 0 60 " +
                                  std::to_string(payload.size()) +
                                  "\r\n" + payload + "\r\n";
                std::string reply;
                double us = exchange(fd, put, &reply, "\r\n");
                if (us < 0 || reply.rfind("INSERTED", 0) != 0) {
                    mine.ok = false;
                    break;
                }
                mine.latencies.push_back(us);
                mine.ops += 1;
            }
            sys::vclose(fd);
        });
    }
    for (auto &t : threads)
        t.join();
    return tally(tallies, double(monotonicNs() - t0) / 1e9);
}

} // namespace varan::bench
