#include "benchutil/harness.h"

#include <cstdlib>
#include <sys/wait.h>
#include <unistd.h>

#include "common/logging.h"

namespace varan::bench {

bool
quickMode()
{
    const char *env = std::getenv("VARAN_BENCH_QUICK");
    return env && env[0] == '1';
}

int
scaled(int full, int quick)
{
    return quickMode() ? quick : full;
}

LoadResult
runNative(const ServerCase &c)
{
    pid_t pid = ::fork();
    VARAN_CHECK(pid >= 0);
    if (pid == 0) {
        int status = c.server();
        ::_exit(status & 0xff);
    }
    LoadResult result = c.workload();
    c.shutdown();
    int status = 0;
    ::waitpid(pid, &status, 0);
    return result;
}

LoadResult
runNvx(const ServerCase &c, int followers, core::NvxOptions options)
{
    core::Nvx nvx(std::move(options));
    std::vector<core::VariantFn> variants(
        static_cast<std::size_t>(followers) + 1, c.server);
    Status started = nvx.start(std::move(variants));
    VARAN_CHECK(started.isOk());
    LoadResult result = c.workload();
    c.shutdown();
    nvx.waitFor(60000000000ULL);
    return result;
}

LoadResult
runLockstep(const ServerCase &c, int variants)
{
    lockstep::LockstepEngine engine;
    LoadResult result;
    // The lockstep monitor loop runs in this thread, so the workload
    // needs its own.
    std::thread driver([&] {
        result = c.workload();
        c.shutdown();
    });
    std::vector<lockstep::VariantFn> fns(
        static_cast<std::size_t>(variants), c.server);
    engine.run(std::move(fns));
    driver.join();
    return result;
}

} // namespace varan::bench
