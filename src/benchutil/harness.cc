#include "benchutil/harness.h"

#include <csignal>
#include <cstdlib>
#include <sys/wait.h>
#include <unistd.h>

#include "common/clock.h"
#include "common/logging.h"

namespace varan::bench {

bool
quickMode()
{
    const char *env = std::getenv("VARAN_BENCH_QUICK");
    return env && env[0] == '1';
}

int
scaled(int full, int quick)
{
    return quickMode() ? quick : full;
}

void
ignoreSigpipe()
{
    static bool installed = false;
    if (installed)
        return;
    ::signal(SIGPIPE, SIG_IGN);
    installed = true;
}

LoadResult
runNative(const ServerCase &c)
{
    ignoreSigpipe();
    pid_t pid = ::fork();
    VARAN_CHECK(pid >= 0);
    if (pid == 0) {
        // Own process group so forking servers (vproxy workers) can be
        // torn down as a subtree if the shutdown knock is missed.
        ::setpgid(0, 0);
        int status = c.server();
        ::_exit(status & 0xff);
    }
    ::setpgid(pid, pid);
    LoadResult result = c.workload();
    c.shutdown();
    // Bounded reap: one wedged server must not stall a whole bench run.
    const std::uint64_t deadline =
        monotonicNs() + (quickMode() ? 10000000000ULL : 30000000000ULL);
    int status = 0;
    while (::waitpid(pid, &status, WNOHANG) == 0) {
        if (monotonicNs() >= deadline) {
            warn("native server for %s ignored shutdown; killing",
                 c.name.c_str());
            ::kill(-pid, SIGKILL);
            ::waitpid(pid, &status, 0);
            break;
        }
        sleepNs(2000000);
    }
    return result;
}

LoadResult
runNvx(const ServerCase &c, int followers, core::EngineConfig config)
{
    ignoreSigpipe();
    core::Nvx nvx(std::move(config));
    std::vector<core::VariantFn> variants(
        static_cast<std::size_t>(followers) + 1, c.server);
    Status started = nvx.start(std::move(variants));
    VARAN_CHECK(started.isOk());
    LoadResult result = c.workload();
    c.shutdown();
    nvx.waitFor(quickMode() ? 15000000000ULL : 60000000000ULL);
    return result;
}

LoadResult
runLockstep(const ServerCase &c, int variants)
{
    ignoreSigpipe();
    lockstep::Options options;
    // Quick runs must finish even when a server sits outside the
    // lockstep engine's single-process contract and wedges: give such
    // rows a short deadline so they report "killed" instead of
    // stalling the nightly job for minutes per row.
    if (quickMode())
        options.progress_timeout_ns = 10000000000ULL; // 10 s
    lockstep::LockstepEngine engine(options);
    LoadResult result;
    // The lockstep monitor loop runs in this thread, so the workload
    // needs its own.
    std::thread driver([&] {
        result = c.workload();
        c.shutdown();
    });
    std::vector<lockstep::VariantFn> fns(
        static_cast<std::size_t>(variants), c.server);
    engine.run(std::move(fns));
    driver.join();
    return result;
}

} // namespace varan::bench
