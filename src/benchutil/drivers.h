/**
 * @file
 * Client-side workload generators mirroring the tools the paper used:
 *
 *   kvBench      ~ redis-benchmark  (mixed command types, N clients)
 *   cacheBench   ~ memslap          (initial load + 9:1 get/set)
 *   httpBench    ~ wrk / ApacheBench / http_load (keep-alive GETs)
 *   queueBench   ~ beanstalkd-benchmark (put/reserve/delete, 256 B)
 *
 * Drivers run in plain processes/threads outside the engine; their
 * syscalls fall through to the kernel untouched.
 */

#ifndef VARAN_BENCHUTIL_DRIVERS_H
#define VARAN_BENCHUTIL_DRIVERS_H

#include <cstdint>
#include <string>
#include <vector>

namespace varan::bench {

/** Result of one workload run. */
struct LoadResult {
    double ops_per_sec = 0;
    double total_ops = 0;
    double wall_seconds = 0;
    double latency_us_p50 = 0;
    double latency_us_p99 = 0;
    bool ok = false;
};

/** redis-benchmark-like mixed workload against vstore. */
LoadResult kvBench(const std::string &endpoint, int clients,
                   int requests_per_client);

/** Single-command latency probe (e.g. HMGET around a failover). */
struct LatencyProbe {
    double us = 0;
    bool ok = false;
    std::string reply;
};
LatencyProbe kvCommandLatency(const std::string &endpoint,
                              const std::string &command);

/** Ask a vstore/vqueue/vcache server to shut down. */
void kvShutdown(const std::string &endpoint);
void queueShutdown(const std::string &endpoint);
void cacheShutdown(const std::string &endpoint);

/** memslap-like workload: load pairs, then mixed get/set. */
LoadResult cacheBench(const std::string &endpoint, int clients,
                      int initial_pairs, int ops_per_client);

/** wrk/ab-like keep-alive GET workload against vhttpd/vproxy. */
LoadResult httpBench(const std::string &endpoint, int connections,
                     int requests_per_connection);

/** Send GET /__shutdown. */
void httpShutdown(const std::string &endpoint);

/** beanstalkd-benchmark-like: each worker pushes then deletes jobs. */
LoadResult queueBench(const std::string &endpoint, int workers,
                      int pushes_per_worker, int payload_bytes);

} // namespace varan::bench

#endif // VARAN_BENCHUTIL_DRIVERS_H
