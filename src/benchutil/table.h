/**
 * @file
 * Fixed-width table printer so every bench binary reports rows shaped
 * like the paper's tables and figure series. Tables also self-record
 * as JSON lines when $VARAN_BENCH_JSON names a file, which is how the
 * nightly CI job collects bench baselines as artifacts.
 */

#ifndef VARAN_BENCHUTIL_TABLE_H
#define VARAN_BENCHUTIL_TABLE_H

#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

namespace varan::bench {

/** Minimal JSON string escaping (quotes, backslashes, control bytes). */
inline std::string
jsonEscape(const std::string &s)
{
    std::string out;
    out.reserve(s.size());
    for (char c : s) {
        if (c == '"' || c == '\\') {
            out += '\\';
            out += c;
        } else if (static_cast<unsigned char>(c) < 0x20) {
            char buf[8];
            std::snprintf(buf, sizeof(buf), "\\u%04x", c);
            out += buf;
        } else {
            out += c;
        }
    }
    return out;
}

class Table
{
  public:
    explicit Table(std::vector<std::string> headers)
        : headers_(std::move(headers))
    {
    }

    void
    addRow(std::vector<std::string> cells)
    {
        rows_.push_back(std::move(cells));
    }

    void
    print() const
    {
        std::vector<std::size_t> widths(headers_.size());
        for (std::size_t i = 0; i < headers_.size(); ++i)
            widths[i] = headers_[i].size();
        for (const auto &row : rows_) {
            for (std::size_t i = 0; i < row.size() && i < widths.size();
                 ++i) {
                widths[i] = std::max(widths[i], row[i].size());
            }
        }
        auto line = [&](const std::vector<std::string> &cells) {
            std::string out;
            for (std::size_t i = 0; i < headers_.size(); ++i) {
                std::string cell = i < cells.size() ? cells[i] : "";
                out += cell;
                out.append(widths[i] - cell.size() + 2, ' ');
            }
            std::printf("%s\n", out.c_str());
        };
        line(headers_);
        std::string rule;
        for (std::size_t w : widths)
            rule += std::string(w, '-') + "  ";
        std::printf("%s\n", rule.c_str());
        for (const auto &row : rows_)
            line(row);
    }

    /**
     * Append the table as one JSON line to the file named by
     * $VARAN_BENCH_JSON (no-op when unset):
     *   {"bench": <name>, "headers": [...], "rows": [[...], ...]}
     * One line per table keeps multi-table binaries appendable and the
     * artifact trivially greppable/jq-able.
     */
    void
    writeJson(const std::string &bench) const
    {
        const char *path = std::getenv("VARAN_BENCH_JSON");
        if (!path || !*path)
            return;
        std::FILE *f = std::fopen(path, "a");
        if (!f)
            return;
        std::fprintf(f, "{\"bench\":\"%s\",\"headers\":[",
                     jsonEscape(bench).c_str());
        for (std::size_t i = 0; i < headers_.size(); ++i) {
            std::fprintf(f, "%s\"%s\"", i ? "," : "",
                         jsonEscape(headers_[i]).c_str());
        }
        std::fprintf(f, "],\"rows\":[");
        for (std::size_t r = 0; r < rows_.size(); ++r) {
            std::fprintf(f, "%s[", r ? "," : "");
            for (std::size_t i = 0; i < rows_[r].size(); ++i) {
                std::fprintf(f, "%s\"%s\"", i ? "," : "",
                             jsonEscape(rows_[r][i]).c_str());
            }
            std::fprintf(f, "]");
        }
        std::fprintf(f, "]}\n");
        std::fclose(f);
    }

  private:
    std::vector<std::string> headers_;
    std::vector<std::vector<std::string>> rows_;
};

/** printf %.2f into a std::string. */
inline std::string
fmt(double value, const char *format = "%.2f")
{
    char buf[64];
    std::snprintf(buf, sizeof(buf), format, value);
    return buf;
}

} // namespace varan::bench

#endif // VARAN_BENCHUTIL_TABLE_H
