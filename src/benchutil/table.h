/**
 * @file
 * Fixed-width table printer so every bench binary reports rows shaped
 * like the paper's tables and figure series.
 */

#ifndef VARAN_BENCHUTIL_TABLE_H
#define VARAN_BENCHUTIL_TABLE_H

#include <cstdio>
#include <string>
#include <vector>

namespace varan::bench {

class Table
{
  public:
    explicit Table(std::vector<std::string> headers)
        : headers_(std::move(headers))
    {
    }

    void
    addRow(std::vector<std::string> cells)
    {
        rows_.push_back(std::move(cells));
    }

    void
    print() const
    {
        std::vector<std::size_t> widths(headers_.size());
        for (std::size_t i = 0; i < headers_.size(); ++i)
            widths[i] = headers_[i].size();
        for (const auto &row : rows_) {
            for (std::size_t i = 0; i < row.size() && i < widths.size();
                 ++i) {
                widths[i] = std::max(widths[i], row[i].size());
            }
        }
        auto line = [&](const std::vector<std::string> &cells) {
            std::string out;
            for (std::size_t i = 0; i < headers_.size(); ++i) {
                std::string cell = i < cells.size() ? cells[i] : "";
                out += cell;
                out.append(widths[i] - cell.size() + 2, ' ');
            }
            std::printf("%s\n", out.c_str());
        };
        line(headers_);
        std::string rule;
        for (std::size_t w : widths)
            rule += std::string(w, '-') + "  ";
        std::printf("%s\n", rule.c_str());
        for (const auto &row : rows_)
            line(row);
    }

  private:
    std::vector<std::string> headers_;
    std::vector<std::vector<std::string>> rows_;
};

/** printf %.2f into a std::string. */
inline std::string
fmt(double value, const char *format = "%.2f")
{
    char buf[64];
    std::snprintf(buf, sizeof(buf), format, value);
    return buf;
}

} // namespace varan::bench

#endif // VARAN_BENCHUTIL_TABLE_H
