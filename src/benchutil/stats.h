/**
 * @file
 * Measurement statistics for the benchmark harness, following the
 * paper's protocol (section 4.2): several runs per configuration, the
 * first discarded as warm-up, the median of the rest reported.
 */

#ifndef VARAN_BENCHUTIL_STATS_H
#define VARAN_BENCHUTIL_STATS_H

#include <algorithm>
#include <cstdint>
#include <functional>
#include <vector>

namespace varan::bench {

inline double
median(std::vector<double> values)
{
    if (values.empty())
        return 0;
    std::sort(values.begin(), values.end());
    std::size_t mid = values.size() / 2;
    if (values.size() % 2 == 1)
        return values[mid];
    return (values[mid - 1] + values[mid]) / 2.0;
}

inline double
mean(const std::vector<double> &values)
{
    if (values.empty())
        return 0;
    double sum = 0;
    for (double v : values)
        sum += v;
    return sum / static_cast<double>(values.size());
}

inline double
percentile(std::vector<double> values, double p)
{
    if (values.empty())
        return 0;
    std::sort(values.begin(), values.end());
    double rank = p / 100.0 * static_cast<double>(values.size() - 1);
    std::size_t lo = static_cast<std::size_t>(rank);
    std::size_t hi = std::min(lo + 1, values.size() - 1);
    double frac = rank - static_cast<double>(lo);
    return values[lo] * (1 - frac) + values[hi] * frac;
}

/**
 * Paper-style measurement: run @p runs times, discard the first
 * (cache warm-up), return the median of the rest.
 */
inline double
medianOfRuns(const std::function<double()> &measure, int runs = 4)
{
    std::vector<double> results;
    for (int i = 0; i < runs; ++i) {
        double value = measure();
        if (i > 0)
            results.push_back(value);
    }
    return median(std::move(results));
}

} // namespace varan::bench

#endif // VARAN_BENCHUTIL_STATS_H
