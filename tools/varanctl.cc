/**
 * @file
 * varanctl — inspect a running VARAN engine from outside the process:
 * attach to its shared region via /proc, or dial its wire status
 * endpoint. All logic lives in src/trace/inspect.cc so tests can link
 * it directly.
 */

#include "trace/inspect.h"

int
main(int argc, char **argv)
{
    return varan::trace::varanctlMain(argc, argv);
}
